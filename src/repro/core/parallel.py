"""EpiSimdemics as chares on the simulated Charm++ runtime.

The paper's Figure-1 structure: two chare arrays — PersonManagers (PM)
and LocationManagers (LM) — each managing many second-level objects
(persons / locations), distributed by one of the data-distribution
strategies (RR, GP, …-splitLoc) and mapped onto PEs.  Each simulated
day runs the six-step algorithm with real protocol traffic:

1. driver broadcasts ``person_phase`` — PMs advance their persons'
   PTTS, filter their visits through the intervention schedule, and
   stream visit records to the owning LMs through the aggregation
   channel;
2. a completion detector (or quiescence detector) closes the phase;
3. driver broadcasts ``location_phase`` — LMs run the DES/interaction
   kernel over the visits they received and send infect messages;
4. a second detector closes the infect phase;
5. driver broadcasts ``apply_phase`` — PMs apply infections;
6. a spanning-tree reduction returns the day's statistics to the driver.

**Semantics are exact** (keyed RNG makes the epidemic identical to the
sequential reference — asserted in tests); **time is modelled**: entry
methods charge costs from :class:`ComputeCostModel` (the paper's load
model) and every message pays the machine/network model's prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import observe
from repro.charm.chare import Chare
from repro.charm.completion import CompletionDetector, QuiescenceDetector
from repro.charm.loadbalance import MigrationCostModel, greedy_lb, refine_lb
from repro.charm.machine import Machine, MachineConfig
from repro.charm.messages import INFECT_BYTES, VISIT_BYTES
from repro.charm.network import NetworkModel
from repro.charm.scheduler import RuntimeSimulator
from repro.core.disease import UNTREATED
from repro.core.exposure import compute_infections
from repro.core.interventions import DayContext
from repro.core.metrics import EpiCurve, state_histogram
from repro.core.scenario import Scenario
from repro.core.simulator import DayResult, SimulationResult
from repro.loadmodel.dynamic import DynamicLoadModel
from repro.loadmodel.static import PAPER_STATIC_MODEL, PiecewiseLoadModel
from repro.partition.quality import BipartitePartition

__all__ = [
    "ComputeCostModel",
    "Distribution",
    "PhaseTimes",
    "ParallelResult",
    "ParallelEpiSimdemics",
]


@dataclass(frozen=True)
class ComputeCostModel:
    """Virtual-time costs of the application's compute kernels.

    Location costs come from the paper's static model (events) plus the
    dynamic model (interactions) — the dynamic part is what static
    partitioning cannot balance.  Person-side constants are set so the
    person phase costs roughly 30–50% of the location phase at equal
    balance, matching the paper's description of a dual-phase
    computation with the location phase dominant.
    """

    location_static: PiecewiseLoadModel = PAPER_STATIC_MODEL
    location_dynamic: DynamicLoadModel = field(default_factory=DynamicLoadModel)
    #: per owned person per day (health recalculation)
    person_health_cost: float = 2.0e-7
    #: per visit generated (schedule computation + message build)
    visit_compute_cost: float = 6.0e-7
    #: per PTTS transition fired
    transition_cost: float = 1.0e-6
    #: per infect message applied
    infect_apply_cost: float = 1.0e-6


@dataclass
class Distribution:
    """Object→chare and chare→PE mapping for both arrays.

    Built from a :class:`BipartitePartition` whose part ids are chare
    ids; chares map to PEs round-robin (part ``c`` → PE ``c % n_pes``),
    so with ``chares_per_pe == 1`` part ids are PE ids, and with
    over-decomposition each PE holds several parts.
    """

    person_chare: np.ndarray
    location_chare: np.ndarray
    n_pm: int
    n_lm: int
    pm_placement: np.ndarray
    lm_placement: np.ndarray
    method: str = ""

    @classmethod
    def from_partition(
        cls, partition: BipartitePartition, machine: Machine | MachineConfig
    ) -> "Distribution":
        n_pes = machine.n_pes if isinstance(machine, Machine) else Machine(machine).n_pes
        k = partition.k
        return cls(
            person_chare=partition.person_part.astype(np.int64),
            location_chare=partition.location_part.astype(np.int64),
            n_pm=k,
            n_lm=k,
            pm_placement=np.arange(k, dtype=np.int64) % n_pes,
            lm_placement=np.arange(k, dtype=np.int64) % n_pes,
            method=partition.method,
        )


@dataclass
class PhaseTimes:
    """Virtual-time stamps of one day's phase boundaries."""

    day: int
    start: float
    visits_done: float
    locations_done: float
    day_done: float

    @property
    def person_phase(self) -> float:
        return self.visits_done - self.start

    @property
    def location_phase(self) -> float:
        return self.locations_done - self.visits_done

    @property
    def total(self) -> float:
        return self.day_done - self.start


@dataclass
class ParallelResult:
    """Epidemic output + virtual timing of a parallel run."""

    result: SimulationResult
    phase_times: list[PhaseTimes]
    total_virtual_time: float
    runtime_stats: dict

    @property
    def time_per_day(self) -> float:
        """Mean virtual seconds per simulated day — Figure 13's y-axis."""
        if not self.phase_times:
            return 0.0
        return float(np.mean([p.total for p in self.phase_times]))


class _PersonManager(Chare):
    def __init__(self, sim: "ParallelEpiSimdemics", persons: np.ndarray, rows: np.ndarray):
        self.sim = sim
        self.persons = persons
        self.rows = rows  # all visit rows owned by this PM's persons
        self.pending_infections: list[int] = []
        self.new_today = 0

    def person_phase(self, day: int) -> None:
        sim = self.sim
        cost = sim.costs
        d = sim.scenario.disease
        changed = d.advance_day(
            sim.health_state, sim.days_remaining, sim.treatment, day,
            sim.rng_factory, subset=self.persons,
        )
        self.charge(
            cost.person_health_cost * self.persons.size
            + cost.transition_cost * changed.size
        )
        keep = sim.scenario.interventions.visit_mask(sim.day_ctx, self.rows)
        rows = self.rows[keep]
        self.charge(cost.visit_compute_cost * rows.size)
        if sim.checker is not None:
            sim.checker.record_visits_sent(rows)
        lm_of = sim.distribution.location_chare
        dests = lm_of[sim.graph.visit_location[rows]]
        det = sim.visit_detector
        channel, lm_name = sim.name("visits"), sim.name("lm")
        for row, dst in zip(rows.tolist(), dests.tolist()):
            det.produce()
            self.send_via(channel, lm_name, dst, "recv_visits", row, VISIT_BYTES)
        self.sim.runtime.flush_channel(channel, self.pe)
        det.producer_done()

    def recv_infect(self, payload) -> None:
        person, _minute = payload
        self.sim.infect_detector.consume()
        if self.sim.checker is not None:
            self.sim.checker.record_infect_received(person)
        self.pending_infections.append(person)

    def apply_phase(self, day: int) -> None:
        sim = self.sim
        pending = np.asarray(self.pending_infections, dtype=np.int64)
        self.pending_infections = []
        infected = sim.scenario.disease.infect(
            pending, sim.health_state, sim.days_remaining, sim.treatment,
            day=day, rng_factory=sim.rng_factory,
        )
        sim.ever_infected[infected] = True
        self.charge(sim.costs.infect_apply_cost * max(1, pending.size))
        self.contribute(sim.name("day_stats"), int(infected.size))


class _LocationManager(Chare):
    def __init__(self, sim: "ParallelEpiSimdemics", locations: np.ndarray):
        self.sim = sim
        self.locations = locations
        self.buffered_rows: list[int] = []

    def recv_visits(self, row: int) -> None:
        self.sim.visit_detector.consume()
        if self.sim.checker is not None:
            self.sim.checker.record_visit_received(row, self.index)
        self.buffered_rows.append(row)

    def location_phase(self, day: int) -> None:
        sim = self.sim
        rows = np.asarray(sorted(self.buffered_rows), dtype=np.int64)
        self.buffered_rows = []
        phase = compute_infections(
            rows, sim.graph, sim.health_state, sim.scenario.disease,
            sim.scenario.transmission, day, sim.rng_factory, collect_stats=True,
            kernel=sim.kernel,
        )
        if sim.checker is not None:
            sim.checker.record_infections(day, phase.infections)
        # Feed the predictive load balancer's application-specific view.
        for loc, inter in phase.interactions.items():
            sim.last_interactions[loc] = inter
        static = sim.costs.location_static
        dynamic = sim.costs.location_dynamic
        compute = 0.0
        for loc, events in phase.events.items():
            inter = phase.interactions.get(loc, 0)
            compute += float(static.evaluate(float(events))) + float(
                dynamic.evaluate(events, inter)
            )
        self.charge(compute)
        det = sim.infect_detector
        pm_of = sim.distribution.person_chare
        pm_name = sim.name("pm")
        for ev in phase.infections:
            det.produce()
            self.send(
                pm_name, int(pm_of[ev.person]), "recv_infect",
                (ev.person, ev.minute), INFECT_BYTES,
            )
        det.producer_done()


class _Driver(Chare):
    def __init__(self, sim: "ParallelEpiSimdemics"):
        self.sim = sim
        self._t_start = 0.0
        self._t_visits = 0.0
        self._t_locations = 0.0

    def start_day(self, _payload=None) -> None:
        sim = self.sim
        day = sim.day
        sim.prepare_day(day)
        self._t_start = self.now()
        driver = sim.name("driver")
        sim.visit_detector.begin_phase(sim.distribution.n_pm, (driver, 0, "visits_done"))
        sim.infect_detector.begin_phase(sim.distribution.n_lm, (driver, 0, "infects_done"))
        self.runtime.broadcast(sim.name("pm"), "person_phase", day)

    def visits_done(self, _payload=None) -> None:
        self._t_visits = self.now()
        sim = self.sim
        if sim.checker is not None:
            sim.checker.close_visit_phase(sim.runtime.aggregators[sim.name("visits")])
        self.runtime.broadcast(sim.name("lm"), "location_phase", sim.day)

    def infects_done(self, _payload=None) -> None:
        self._t_locations = self.now()
        if self.sim.checker is not None:
            self.sim.checker.close_infect_phase()
        self.runtime.broadcast(self.sim.name("pm"), "apply_phase", self.sim.day)

    def on_day_stats(self, new_infections: int) -> None:
        sim = self.sim
        sim.finish_day(
            new_infections,
            PhaseTimes(
                day=sim.day,
                start=self._t_start,
                visits_done=self._t_visits,
                locations_done=self._t_locations,
                day_done=self.now(),
            ),
        )
        # Load balancing runs at the day boundary (bulk synchronous);
        # charging the driver delays the next day's broadcast, which is
        # exactly the global stall an LB step causes.
        lb_cost = sim.maybe_rebalance(sim.day)
        if lb_cost:
            self.charge(lb_cost)
        if sim.day < sim.scenario.n_days:
            self.send(sim.name("driver"), 0, "start_day", None)


class ParallelEpiSimdemics:
    """Drives one scenario on the simulated runtime.

    Parameters
    ----------
    scenario:
        The simulation specification (same object the sequential
        simulator takes).
    machine:
        Machine shape (nodes, cores, SMP layout).
    distribution:
        Object→chare→PE mapping from a partitioning strategy.
    network:
        Communication cost constants.
    costs:
        Compute-kernel cost constants.
    sync:
        ``"cd"`` (completion detection, the paper's optimisation) or
        ``"qd"`` (quiescence detection, the baseline).
    aggregation_bytes:
        Visit-channel buffer size; 0 disables aggregation.
    delivery:
        Visit-channel transport: ``"aggregated"`` (per-destination
        buffers, the paper's §IV-C optimisation), ``"direct"`` (every
        visit pays its own envelope — the no-opt baseline, equivalent
        to ``aggregation_bytes=0``) or ``"tram"`` (mesh-routed
        TRAM-style aggregation, footnote 1).  A delivery mode is a
        performance choice only — the epidemic is identical under all
        three (asserted by :mod:`repro.validate`).
    kernel:
        Exposure-kernel selection for the LocationManagers' interaction
        computation (``"flat"`` / ``"grouped"``; None = the module
        default).  Kernels are bit-for-bit equivalent — a performance
        choice only, like ``delivery``.
    validate:
        Attach an :class:`~repro.validate.invariants.InvariantChecker`
        and enable the runtime's own invariant checks: exactly-once
        visit delivery, detector-closure soundness, unique transmission
        RNG keys, legal PTTS steps, partition/infection conservation.
        Costs one extra bookkeeping pass per message; off by default.
    lb_period:
        Rebalance LocationManagers every N days (None = off).  Needs
        over-decomposition (more LM chares than PEs) to have any moves
        to make.
    lb_strategy:
        ``"greedy"`` / ``"refine"`` (measurement-based, Charm++-style)
        or ``"predictive"`` (the paper's §VII application-specific
        proposal: predicted = static(events) + dynamic(last observed
        interactions)).
    migration_model:
        Virtual-time price of an LB step.
    runtime:
        Attach to an existing runtime instead of creating one — this is
        how several simulations share a machine (§IV-B's "multiple
        simulations simultaneously" scenario; see
        :class:`ParallelEnsemble`).  Requires a unique ``namespace``.
    namespace:
        Prefix applied to every array/channel/detector name this
        simulation creates on the runtime.
    backend:
        ``"charm"`` (default) simulates the chare runtime in virtual
        time; ``"smp"`` executes the same decomposition on real OS
        processes over shared memory
        (:class:`~repro.smp.SmpSimulator` — one worker per chare
        pair, i.e. ``distribution.n_pm`` workers).  The epidemic is
        bit-identical either way; with ``"smp"``, :meth:`run` returns
        an :class:`~repro.smp.SmpResult` whose phase times are
        *measured* wall-clock seconds instead of modelled virtual
        time.
    """

    def __init__(
        self,
        scenario: Scenario,
        machine: MachineConfig,
        distribution: Distribution,
        network: NetworkModel | None = None,
        costs: ComputeCostModel | None = None,
        sync: str = "cd",
        aggregation_bytes: int = 64 * 1024,
        delivery: str = "aggregated",
        lb_period: int | None = None,
        lb_strategy: str = "greedy",
        migration_model: MigrationCostModel | None = None,
        runtime: RuntimeSimulator | None = None,
        namespace: str = "",
        kernel: str | None = None,
        validate: bool = False,
        backend: str = "charm",
    ):
        from repro.core.exposure import KERNELS

        if backend not in ("charm", "smp"):
            raise ValueError("backend must be 'charm' or 'smp'")
        self.backend = backend
        if backend == "smp":
            if distribution.n_pm != distribution.n_lm:
                raise ValueError(
                    "backend='smp' needs matching PM/LM counts "
                    "(one worker runs one PM and one LM)"
                )
            from repro.partition.quality import BipartitePartition
            from repro.smp import SmpSimulator

            self.scenario = scenario
            self.graph = scenario.graph
            self.distribution = distribution
            self.kernel = kernel
            self._smp = SmpSimulator(
                scenario,
                n_workers=distribution.n_pm,
                partition=BipartitePartition(
                    person_part=distribution.person_chare,
                    location_part=distribution.location_chare,
                    k=distribution.n_pm,
                    method=distribution.method,
                ),
                kernel=kernel,
            )
            return
        if sync not in ("cd", "qd"):
            raise ValueError("sync must be 'cd' or 'qd'")
        if delivery not in ("aggregated", "direct", "tram"):
            raise ValueError("delivery must be 'aggregated', 'direct' or 'tram'")
        if kernel is not None and kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        if lb_strategy not in ("greedy", "refine", "predictive"):
            raise ValueError("lb_strategy must be greedy, refine or predictive")
        if lb_period is not None and lb_period < 1:
            raise ValueError("lb_period must be a positive day count")
        self.scenario = scenario
        self.graph = scenario.graph
        self.distribution = distribution
        self.costs = costs or ComputeCostModel()
        self.rng_factory = scenario.rng_factory
        self.namespace = namespace
        self.kernel = kernel
        self.runtime = (
            runtime
            if runtime is not None
            else RuntimeSimulator(machine, network, validate=validate)
        )
        self.runtime.ensure_pe_agents()
        scenario.interventions.reset()
        if validate:
            from repro.validate.invariants import InvariantChecker

            self.checker: InvariantChecker | None = InvariantChecker(
                scenario.graph, scenario.disease, distribution,
                extra_transitions=scenario.interventions.extra_transitions(
                    scenario.disease
                ),
                reinfection_ok=scenario.interventions.reinfection_possible(
                    scenario.disease
                ),
            )
        else:
            self.checker = None

        d = scenario.disease
        g = self.graph
        self.health_state, self.days_remaining = d.initial_health(g.n_persons)
        self.treatment = np.full(g.n_persons, UNTREATED, dtype=np.int32)
        self.ever_infected = np.zeros(g.n_persons, dtype=bool)
        self.day = 0
        self.day_ctx: DayContext | None = None
        self._seeded = False
        self._seeded_count = 0
        self.curve = EpiCurve()
        self.phase_times: list[PhaseTimes] = []
        self.day_results: list[DayResult] = []
        self._visits_today = 0
        self.lb_period = lb_period
        self.lb_strategy = lb_strategy
        self.migration_model = migration_model or MigrationCostModel()
        self.lb_steps = 0
        self.lb_moves = 0
        self.last_interactions: dict[int, int] = {}
        self._cost_snapshot: dict[tuple[str, int], float] = {}

        # Pre-compute per-chare object lists.
        dist = distribution
        pm_persons = [np.flatnonzero(dist.person_chare == c) for c in range(dist.n_pm)]
        ptr = g.person_visit_slices()
        all_rows = np.arange(g.n_visits, dtype=np.int64)
        pm_rows = [
            np.concatenate([all_rows[ptr[p] : ptr[p + 1]] for p in persons])
            if persons.size
            else np.empty(0, dtype=np.int64)
            for persons in pm_persons
        ]
        lm_locations = [np.flatnonzero(dist.location_chare == c) for c in range(dist.n_lm)]
        if self.checker is not None:
            self.checker.check_partition(pm_persons, pm_rows, lm_locations)

        rt = self.runtime
        if delivery == "tram":
            rt.create_tram_channel(self.name("visits"), aggregation_bytes)
        else:
            rt.create_channel(
                self.name("visits"), 0 if delivery == "direct" else aggregation_bytes
            )
        rt.create_array(
            self.name("pm"),
            lambda i: _PersonManager(self, pm_persons[i], pm_rows[i]),
            dist.pm_placement,
        )
        rt.create_array(
            self.name("lm"),
            lambda i: _LocationManager(self, lm_locations[i]),
            dist.lm_placement,
        )
        rt.create_array(
            self.name("driver"), lambda i: _Driver(self), np.zeros(1, dtype=np.int64)
        )
        detector_cls = CompletionDetector if sync == "cd" else QuiescenceDetector
        self.visit_detector = detector_cls(rt, self.name("visits_phase"))
        self.infect_detector = detector_cls(rt, self.name("infect_phase"))
        rt.register_reduction(
            self.name("day_stats"), combine=lambda a, b: a + b, arrays=[self.name("pm")],
            target=(self.name("driver"), 0, "on_day_stats"),
        )
        if lb_period is not None:
            rt.enable_chare_cost_tracking(self.name("lm"))
        self._lm_locations = lm_locations

    @classmethod
    def from_spec(cls, spec, graph=None, partition=None) -> "ParallelEpiSimdemics":
        """Build from a :class:`repro.spec.RunSpec`: one PE per worker,
        delivery/sync/kernel from the spec's runtime config.

        ``graph``/``partition`` short-circuit the population and
        partition builds (pass cached artifacts).
        """
        if graph is None:
            graph = spec.population.build()
        if partition is None:
            graph, partition = spec.resolved_partition().build(graph)
        rt = spec.runtime
        try:
            machine = MachineConfig(
                n_nodes=1, cores_per_node=rt.workers, smp=rt.workers > 1
            )
        except ValueError:
            # Worker counts whose SMP shape is invalid (k >= cores or
            # k ∤ cores, e.g. 2 or 3) run every core as its own process.
            machine = MachineConfig(
                n_nodes=1, cores_per_node=rt.workers, smp=False
            )
        return cls(
            spec.build_scenario(graph),
            machine,
            Distribution.from_partition(partition, machine),
            sync=rt.sync,
            delivery=rt.delivery,
            kernel=rt.kernel,
        )

    def name(self, base: str) -> str:
        """Namespaced runtime identifier for this simulation's objects."""
        return self.namespace + base

    # ------------------------------------------------------------------
    def prepare_day(self, day: int) -> None:
        """Central start-of-day work: seeding, treatments, day context."""
        sc = self.scenario
        d = sc.disease
        if not self._seeded:
            cases = sc.index_cases()
            infected = d.infect(
                cases, self.health_state, self.days_remaining, self.treatment,
                day=-1, rng_factory=self.rng_factory,
            )
            self.ever_infected[infected] = True
            self._seeded_count = int(infected.size)
            self._seeded = True
        self.day_ctx = DayContext(
            day=day,
            graph=self.graph,
            disease=d,
            health_state=self.health_state,
            treatment=self.treatment,
            prevalence=self._prevalence(),
            cumulative_attack=float(self.ever_infected.mean()),
            rng_factory=self.rng_factory,
            days_remaining=self.days_remaining,
        )
        sc.interventions.update_treatments(self.day_ctx)
        if self.checker is not None:
            self.checker.begin_day(day, self.health_state)

    def _prevalence(self) -> float:
        d = self.scenario.disease
        if not hasattr(self, "_terminal_states"):
            self._terminal_states = np.array(
                [s.dwell.kind.name == "FOREVER" and not s.is_infectious
                 for s in d.states]
            )
        now = self.ever_infected & (self.health_state != d.susceptible_index)
        now &= ~self._terminal_states[self.health_state]
        return float(now.sum()) / max(1, self.graph.n_persons)

    def maybe_rebalance(self, day: int) -> float:
        """Run an LB step if due; return its virtual-time cost (0 if not).

        Called by the driver at the day boundary.  Only LocationManagers
        migrate — the location phase carries the dynamic load.
        """
        if self.lb_period is None or day == 0 or day % self.lb_period != 0:
            return 0.0
        rt = self.runtime
        lm_name = self.name("lm")
        arr = rt.arrays[lm_name]
        n_lm = arr.n_elements
        if self.lb_strategy == "predictive":
            # Application-specific prediction (paper §VII): the next
            # day's LM cost from the static model plus the dynamic model
            # fed with the interactions just observed.
            events = 2.0 * self.graph.location_visit_counts.astype(np.float64)
            static = np.asarray(self.costs.location_static.evaluate(events))
            inter = np.zeros(self.graph.n_locations)
            for loc, v in self.last_interactions.items():
                inter[loc] = v
            dynamic = np.asarray(self.costs.location_dynamic.evaluate(events, inter))
            per_loc = static + dynamic
            costs = np.zeros(n_lm)
            np.add.at(costs, self.distribution.location_chare, per_loc)
        else:
            # Measured costs since the previous LB step (principle of
            # persistence).
            costs = np.zeros(n_lm)
            for (aname, idx), total in rt.chare_costs.items():
                if aname == lm_name:
                    costs[idx] = total - self._cost_snapshot.get((aname, idx), 0.0)
            self._cost_snapshot = dict(rt.chare_costs)
        old = arr.placement.copy()
        if self.lb_strategy == "refine":
            new = refine_lb(costs, old, rt.machine.n_pes)
        else:
            new = greedy_lb(costs, rt.machine.n_pes)
        summary = rt.migrate_array(lm_name, new)
        self.lb_steps += 1
        self.lb_moves += summary["moved"]
        return self.migration_model.step_cost(rt.machine, rt.network, old, new)

    def finish_day(self, new_infections: int, times: PhaseTimes) -> None:
        """Called by the driver when a day's reduction arrives."""
        total_new = new_infections + (self._seeded_count if self.day == 0 else 0)
        # Post-apply hook: same algorithmic point as the sequential
        # simulator (after the apply phase, before prevalence).
        self.scenario.interventions.post_apply(self.day_ctx)
        prev = self._prevalence()
        self.curve.record_day(total_new, prev)
        if self.checker is not None:
            self.checker.end_day(self.day, self.health_state, self.ever_infected, self.curve)
        self.day_results.append(
            DayResult(
                day=self.day,
                visits_made=0,  # filled per-PM; aggregate not tracked here
                new_infections=total_new,
                transitions=0,
                prevalence=prev,
            )
        )
        self.phase_times.append(times)
        self.day += 1

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Inject the first day (used when sharing a runtime)."""
        self.runtime.inject(self.name("driver"), 0, "start_day")

    def collect(self) -> ParallelResult:
        """Assemble the result after the runtime has drained."""
        result = SimulationResult(
            curve=self.curve,
            final_histogram=state_histogram(self.health_state, self.scenario.disease),
            days=self.day_results,
        )
        return ParallelResult(
            result=result,
            phase_times=self.phase_times,
            total_virtual_time=self.runtime.current_time,
            runtime_stats=self.runtime.stats_summary(),
        )

    def run(self) -> ParallelResult:
        """Run all days; return epidemic output plus virtual timing.

        While an :mod:`repro.observe` observer is installed, the runtime
        is additionally traced per PE (via
        :func:`repro.charm.trace.attach_tracer`) and the entry-method
        executions are ingested as virtual spans — the Projections-style
        per-PE timeline view.  Tracing draws no random numbers, so the
        epidemic is bit-identical with or without it.

        With ``backend="smp"`` the run instead executes on real worker
        processes and returns an :class:`~repro.smp.SmpResult` (same
        ``.result`` payload; measured wall-clock phase times).
        """
        if self.backend == "smp":
            return self._smp.run()
        obs = observe.active()
        tracer = None
        if obs is not None:
            from repro.charm.trace import attach_tracer

            tracer = attach_tracer(self.runtime)
        with observe.span(
            "parallel.run",
            days=self.scenario.n_days,
            pes=self.runtime.machine.n_pes,
            method=self.distribution.method,
        ):
            self.start()
            self.runtime.run(max_events=200_000_000)
        if tracer is not None:
            obs.ingest_tracer(tracer)
        return self.collect()


class ParallelEnsemble:
    """Several simulations sharing one simulated machine (§IV-B).

    The paper's stated reason for completion detection over quiescence
    detection: "in the future, we will use EPISIMDEMICS to perform
    multiple simulations simultaneously, using dynamic replication of
    state (chare arrays); we require an approach that enables us to
    perform synchronization local to a module."  An ensemble runs R
    replicas (different seeds or policies) concurrently on one runtime;
    with CD each replica's phases close independently, while QD — which
    observes *global* traffic — couples every replica to the slowest
    one's drainage (see ``tests/integration/test_ensemble.py``).
    """

    def __init__(
        self,
        scenarios: list[Scenario],
        machine: MachineConfig,
        distributions: list[Distribution],
        network: NetworkModel | None = None,
        sync: str = "cd",
        **sim_kwargs,
    ):
        if len(scenarios) != len(distributions):
            raise ValueError("need one distribution per scenario")
        if not scenarios:
            raise ValueError("empty ensemble")
        self.runtime = RuntimeSimulator(machine, network)
        self.sims = [
            ParallelEpiSimdemics(
                sc, machine, dist, sync=sync, runtime=self.runtime,
                namespace=f"r{i}.", **sim_kwargs,
            )
            for i, (sc, dist) in enumerate(zip(scenarios, distributions))
        ]

    def run(self) -> list[ParallelResult]:
        for sim in self.sims:
            sim.start()
        self.runtime.run(max_events=500_000_000)
        return [sim.collect() for sim in self.sims]
