"""Probabilistic Timed Transition System (PTTS) disease models.

Section II-A of the paper: a person's health state is a finite state
machine where each state carries

* a **dwell-time distribution** — how long the person remains in the
  state before automatically transitioning,
* **probabilistic transitions** to successor states, and
* per-**treatment** transition sets (e.g. vaccinated people move from
  exposed to an attenuated infectious state more rarely).

States also carry the epidemiological coefficients consumed by the
transmission function: *infectivity* (how strongly an occupant of this
state sheds) and *susceptibility* (how easily they acquire).

The implementation is array-oriented: a :class:`DiseaseModel` compiles
its states into flat NumPy arrays so a whole population's daily update
is a handful of vectorised operations (see :meth:`DiseaseModel.advance_day`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import RngFactory

__all__ = [
    "DwellKind",
    "DwellDistribution",
    "Transition",
    "HealthState",
    "DiseaseModel",
    "influenza_model",
    "sir_model",
    "UNTREATED",
    "VACCINATED",
]

#: Treatment set indices.  The paper mentions vaccination as the primary
#: treatment distinguishing transition sets; more can be registered.
UNTREATED = 0
VACCINATED = 1

#: Sentinel dwell meaning "remain until an external trigger" (e.g. the
#: susceptible state waits for an infect message; recovered is absorbing).
FOREVER = np.iinfo(np.int32).max


class DwellKind(enum.IntEnum):
    """Supported dwell-time distribution families (in whole days)."""

    FIXED = 0
    UNIFORM = 1  # inclusive integer range [a, b]
    GEOMETRIC = 2  # support {1, 2, ...} with success prob p
    GAMMA = 3  # continuous gamma rounded up to >= 1 day
    FOREVER = 4


@dataclass(frozen=True)
class DwellDistribution:
    """Dwell time of a PTTS state, in days.

    Use the class methods (``fixed``, ``uniform``, ...) rather than the
    raw constructor.
    """

    kind: DwellKind
    a: float = 0.0
    b: float = 0.0

    @classmethod
    def fixed(cls, days: int) -> "DwellDistribution":
        if days < 1:
            raise ValueError("fixed dwell must be >= 1 day")
        return cls(DwellKind.FIXED, float(days))

    @classmethod
    def uniform(cls, lo: int, hi: int) -> "DwellDistribution":
        if not (1 <= lo <= hi):
            raise ValueError("need 1 <= lo <= hi")
        return cls(DwellKind.UNIFORM, float(lo), float(hi))

    @classmethod
    def geometric(cls, p: float) -> "DwellDistribution":
        if not (0.0 < p <= 1.0):
            raise ValueError("geometric p must be in (0, 1]")
        return cls(DwellKind.GEOMETRIC, p)

    @classmethod
    def gamma(cls, shape: float, scale: float) -> "DwellDistribution":
        if shape <= 0 or scale <= 0:
            raise ValueError("gamma parameters must be positive")
        return cls(DwellKind.GAMMA, shape, scale)

    @classmethod
    def forever(cls) -> "DwellDistribution":
        return cls(DwellKind.FOREVER)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` dwell times (int32 days; FOREVER uses the sentinel)."""
        if self.kind == DwellKind.FIXED:
            return np.full(n, int(self.a), dtype=np.int32)
        if self.kind == DwellKind.UNIFORM:
            return rng.integers(int(self.a), int(self.b) + 1, size=n, dtype=np.int32)
        if self.kind == DwellKind.GEOMETRIC:
            return rng.geometric(self.a, size=n).astype(np.int32)
        if self.kind == DwellKind.GAMMA:
            return np.maximum(1, np.ceil(rng.gamma(self.a, self.b, size=n))).astype(np.int32)
        return np.full(n, FOREVER, dtype=np.int32)

    @property
    def mean(self) -> float:
        """Expected dwell in days (inf for FOREVER)."""
        if self.kind == DwellKind.FIXED:
            return self.a
        if self.kind == DwellKind.UNIFORM:
            return (self.a + self.b) / 2.0
        if self.kind == DwellKind.GEOMETRIC:
            return 1.0 / self.a
        if self.kind == DwellKind.GAMMA:
            return max(1.0, self.a * self.b)
        return float("inf")


@dataclass(frozen=True)
class Transition:
    """A probabilistic edge of the PTTS: go to ``target`` w.p. ``prob``."""

    target: str
    prob: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.prob <= 1.0):
            raise ValueError(f"transition probability {self.prob} outside [0, 1]")


@dataclass(frozen=True)
class HealthState:
    """One PTTS state.

    Parameters
    ----------
    name:
        Unique state label.
    infectivity:
        Shedding coefficient used by the transmission function; 0 for
        non-infectious states.
    susceptibility:
        Acquisition coefficient; 0 for non-susceptible states.
    dwell:
        Dwell-time distribution.
    transitions:
        Mapping ``treatment -> [Transition, ...]``; each list's
        probabilities must sum to 1 (within fp tolerance).  Treatments
        not present fall back to :data:`UNTREATED`'s list.  Absorbing
        states use an empty mapping with a FOREVER dwell.
    symptomatic:
        Whether the state is symptomatic — drives the stay-home
        behaviour intervention.
    """

    name: str
    infectivity: float = 0.0
    susceptibility: float = 0.0
    dwell: DwellDistribution = field(default_factory=DwellDistribution.forever)
    transitions: dict[int, tuple[Transition, ...]] = field(default_factory=dict)
    symptomatic: bool = False

    @property
    def is_infectious(self) -> bool:
        return self.infectivity > 0.0

    @property
    def is_susceptible(self) -> bool:
        return self.susceptibility > 0.0


class DiseaseModel:
    """A compiled PTTS over a fixed state list.

    Parameters
    ----------
    states:
        The PTTS states; order defines state indices.
    susceptible:
        Name of the initial (susceptible) state.
    infection_entry:
        Mapping ``treatment -> state name`` entered upon receiving an
        infect message.  Missing treatments fall back to UNTREATED's
        entry state.
    infection_entry_by_state:
        Optional mapping ``current state name -> entry state name``
        overriding the treatment-based entry for persons infected
        *while in* that state.  This is how partially-immune states
        route to a different lane (e.g. two-variant cross-immunity:
        recovered-from-A persons reinfect into the variant-B lane).
        States listed here must have ``susceptibility > 0``.
    """

    def __init__(
        self,
        states: list[HealthState],
        susceptible: str,
        infection_entry: dict[int, str],
        infection_entry_by_state: dict[str, str] | None = None,
    ):
        if len({s.name for s in states}) != len(states):
            raise ValueError("duplicate state names")
        self.states = list(states)
        self.index = {s.name: i for i, s in enumerate(states)}
        if susceptible not in self.index:
            raise ValueError(f"unknown susceptible state {susceptible!r}")
        if UNTREATED not in infection_entry:
            raise ValueError("infection_entry must define the UNTREATED entry state")
        for t, name in infection_entry.items():
            if name not in self.index:
                raise ValueError(f"unknown infection entry state {name!r} for treatment {t}")
        self.susceptible_index = self.index[susceptible]
        self.infection_entry = dict(infection_entry)
        self.infection_entry_by_state = dict(infection_entry_by_state or {})
        for src, dst in self.infection_entry_by_state.items():
            if src not in self.index or dst not in self.index:
                raise ValueError(f"unknown state in infection entry {src!r} -> {dst!r}")
            if self.states[self.index[src]].susceptibility <= 0.0:
                raise ValueError(f"infection entry source {src!r} is not susceptible")
        self._entry_by_state_index = {
            self.index[src]: self.index[dst]
            for src, dst in self.infection_entry_by_state.items()
        }

        n = len(states)
        self.infectivity = np.array([s.infectivity for s in states], dtype=np.float64)
        self.susceptibility = np.array([s.susceptibility for s in states], dtype=np.float64)
        self.symptomatic = np.array([s.symptomatic for s in states], dtype=bool)
        self.is_infectious = self.infectivity > 0
        self.is_susceptible = self.susceptibility > 0

        # Validate transitions and cache (state, treatment) -> (targets, cumprobs).
        self._compiled: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        treatments: set[int] = {UNTREATED}
        for s in states:
            treatments.update(s.transitions.keys())
        self.treatments = sorted(treatments)
        for i, s in enumerate(states):
            has_transitions = bool(s.transitions)
            if has_transitions and s.dwell.kind == DwellKind.FOREVER:
                raise ValueError(f"state {s.name!r} has transitions but FOREVER dwell")
            if not has_transitions and s.dwell.kind != DwellKind.FOREVER:
                raise ValueError(f"state {s.name!r} has finite dwell but no transitions")
            for t in self.treatments:
                trs = s.transitions.get(t, s.transitions.get(UNTREATED, ()))
                if not trs:
                    continue
                total = sum(tr.prob for tr in trs)
                if abs(total - 1.0) > 1e-9:
                    raise ValueError(
                        f"transitions of state {s.name!r} (treatment {t}) sum to {total}, not 1"
                    )
                targets = np.array([self.index[tr.target] for tr in trs], dtype=np.int32)
                cum = np.cumsum([tr.prob for tr in trs])
                self._compiled[(i, t)] = (targets, cum)

    @property
    def n_states(self) -> int:
        return len(self.states)

    def state_index(self, name: str) -> int:
        return self.index[name]

    def initial_health(self, n_persons: int) -> tuple[np.ndarray, np.ndarray]:
        """Fresh ``(state, days_remaining)`` arrays — everyone susceptible."""
        state = np.full(n_persons, self.susceptible_index, dtype=np.int32)
        remaining = np.full(n_persons, FOREVER, dtype=np.int32)
        return state, remaining

    def entry_state(self, treatment: int) -> int:
        """State index entered on infection under ``treatment``."""
        name = self.infection_entry.get(treatment, self.infection_entry[UNTREATED])
        return self.index[name]

    # ------------------------------------------------------------------
    # daily update
    # ------------------------------------------------------------------
    # Randomness is keyed per (day, person) — see repro.util.rng — so the
    # outcome is independent of the order in which persons are processed.
    # This is what lets the chare-parallel execution reproduce the
    # sequential reference bit-for-bit regardless of data distribution.

    _ADVANCE_SALT = 0
    _INFECT_SALT = 1

    def advance_day(
        self,
        state: np.ndarray,
        remaining: np.ndarray,
        treatment: np.ndarray,
        day: int,
        rng_factory,
        subset: np.ndarray | None = None,
    ) -> np.ndarray:
        """Apply one day of PTTS evolution **in place**.

        Decrements dwell timers and fires all due transitions (a person
        makes at most one transition per day — dwell times are >= 1).
        Returns the indices of persons whose state changed, which the
        simulator uses for bookkeeping and dynamic-load statistics.

        ``subset`` restricts the update to the given person ids — this
        is how PersonManager chares advance only the persons they own.
        Because draws are keyed per (day, person), advancing the whole
        population at once or as a disjoint union of subsets yields
        identical results.
        """
        if subset is None:
            live = remaining != FOREVER
            remaining[live] -= 1
            due = np.flatnonzero(live & (remaining <= 0))
        else:
            subset = np.asarray(subset, dtype=np.int64)
            live = subset[remaining[subset] != FOREVER]
            remaining[live] -= 1
            due = live[remaining[live] <= 0]
        if due.size == 0:
            return due
        changed: list[int] = []
        for p in due:
            p = int(p)
            s = int(state[p])
            t = int(treatment[p])
            compiled = self._compiled.get((s, t)) or self._compiled.get((s, UNTREATED))
            if compiled is None:  # pragma: no cover - absorbing states never come due
                continue
            gen = rng_factory.stream(RngFactory.PERSON, day, p, self._ADVANCE_SALT)
            targets, cum = compiled
            choice = min(int(np.searchsorted(cum, gen.random(), side="right")), len(targets) - 1)
            ns = int(targets[choice])
            state[p] = ns
            dwell = self.states[ns].dwell
            remaining[p] = FOREVER if dwell.kind == DwellKind.FOREVER else int(dwell.sample(gen, 1)[0])
            changed.append(p)
        return np.asarray(changed, dtype=np.int64)

    def infect(
        self,
        persons: np.ndarray,
        state: np.ndarray,
        remaining: np.ndarray,
        treatment: np.ndarray,
        day: int,
        rng_factory,
    ) -> np.ndarray:
        """Move ``persons`` from a susceptible state into their entry state.

        Persons not currently in a susceptible state (``susceptibility
        > 0``) are ignored (a person may receive several infect
        messages in one day; the first wins and the rest are dropped,
        matching the paper's step 5).  The entry state is chosen per
        ``infection_entry_by_state`` for partially-immune states, else
        per treatment.  Returns the persons actually infected.
        """
        persons = np.unique(np.asarray(persons, dtype=np.int64))
        mask = self.is_susceptible[state[persons]]
        hit = persons[mask]
        for p in hit:
            p = int(p)
            entry = self._entry_by_state_index.get(int(state[p]))
            if entry is None:
                entry = self.entry_state(int(treatment[p]))
            state[p] = entry
            dwell = self.states[entry].dwell
            if dwell.kind == DwellKind.FOREVER:
                remaining[p] = FOREVER
            else:
                gen = rng_factory.stream(RngFactory.PERSON, day, p, self._INFECT_SALT)
                remaining[p] = int(dwell.sample(gen, 1)[0])
        return hit


# ----------------------------------------------------------------------
# model presets
# ----------------------------------------------------------------------
def influenza_model(
    r0_scale: float = 1.0,
    vaccine_efficacy: float = 0.8,
) -> DiseaseModel:
    """An H1N1-like influenza PTTS.

    Structure (the standard EpiSimdemics flu template)::

        susceptible --infect--> latent --> {infectious_symptomatic (67%),
                                            infectious_asymptomatic (33%)}
                                        --> recovered

    Vaccinated persons enter a ``latent_vax`` state that mostly resolves
    without becoming infectious (``vaccine_efficacy`` of the time).
    """
    if not (0.0 <= vaccine_efficacy <= 1.0):
        raise ValueError("vaccine_efficacy must be within [0, 1]")
    symp_frac = 0.67
    states = [
        HealthState("susceptible", susceptibility=1.0 * r0_scale),
        HealthState(
            "latent",
            dwell=DwellDistribution.uniform(1, 3),
            transitions={
                UNTREATED: (
                    Transition("infectious_symptomatic", symp_frac),
                    Transition("infectious_asymptomatic", 1.0 - symp_frac),
                )
            },
        ),
        HealthState(
            "latent_vax",
            dwell=DwellDistribution.uniform(1, 3),
            transitions={
                UNTREATED: (
                    Transition("recovered", vaccine_efficacy),
                    Transition("infectious_asymptomatic", 1.0 - vaccine_efficacy),
                )
            },
        ),
        HealthState(
            "infectious_symptomatic",
            infectivity=1.0,
            symptomatic=True,
            dwell=DwellDistribution.uniform(3, 6),
            transitions={UNTREATED: (Transition("recovered", 1.0),)},
        ),
        HealthState(
            "infectious_asymptomatic",
            infectivity=0.5,
            dwell=DwellDistribution.uniform(3, 6),
            transitions={UNTREATED: (Transition("recovered", 1.0),)},
        ),
        HealthState("recovered"),
    ]
    return DiseaseModel(
        states,
        susceptible="susceptible",
        infection_entry={UNTREATED: "latent", VACCINATED: "latent_vax"},
    )


def sir_model(
    infectious_days: int = 4,
    latent_days: int = 2,
) -> DiseaseModel:
    """A minimal S→E→I→R chain used by unit tests and the quickstart."""
    states = [
        HealthState("S", susceptibility=1.0),
        HealthState(
            "E",
            dwell=DwellDistribution.fixed(latent_days),
            transitions={UNTREATED: (Transition("I", 1.0),)},
        ),
        HealthState(
            "I",
            infectivity=1.0,
            symptomatic=True,
            dwell=DwellDistribution.fixed(infectious_days),
            transitions={UNTREATED: (Transition("R", 1.0),)},
        ),
        HealthState("R"),
    ]
    return DiseaseModel(states, susceptible="S", infection_entry={UNTREATED: "E"})
