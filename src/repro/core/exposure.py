"""Location-phase exposure computation shared by all execution modes.

The sequential reference simulator and the chare-parallel runtime both
delegate the location phase (paper step 3) to
:func:`compute_infections`; because transmission draws are keyed by
``(day, location, person)``, the outcome is independent of how the
locations are grouped into LocationManagers — the property that makes
the parallel execution reproduce the sequential one exactly.

Three interchangeable kernels implement the phase:

* ``"flat"`` (default) — one global sort of the day's candidate visits
  by ``(location, sublocation)``, sublocation-blocked pair enumeration
  (:func:`~repro.core.des.blocked_pairwise_exposures`), segment-reduced
  hazard accumulation over the whole visit set, and one batched
  keyed-uniform draw (:meth:`~repro.util.rng.RngFactory.keyed_uniforms`)
  for every exposed person at once;
* ``"grouped"`` — the reference formulation: a Python loop over
  locations, a per-location S×I cross product masked by sublocation
  after materialisation, and one keyed ``Generator`` per exposed
  person;
* ``"compiled"`` — the flat kernel's candidate filter and sort, with
  the pair enumeration + hazard reduction replaced by one streaming C
  loop (:mod:`repro.core.ckernel`, built on demand via ``ctypes``)
  that never materialises a per-pair array.  Only usable when
  :func:`repro.core.ckernel.available` — no C toolchain means callers
  fall back to the pure-numpy kernels.

All kernels produce bit-identical results — same infection events in
the same order, same statistics — which ``repro validate
--diff-kernels`` and the differential oracle certify; ``"flat"`` is
much faster than ``"grouped"`` on heavy-tailed populations (see
``benchmarks/bench_exposure_kernel.py``) and ``"compiled"`` beats
``"flat"`` again by skipping the pair materialisation entirely.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro import observe
from repro.core.des import blocked_pairwise_exposures, pairwise_exposures
from repro.core.disease import DiseaseModel
from repro.core.transmission import TransmissionModel
from repro.util.rng import RngFactory

__all__ = [
    "KERNELS",
    "DEFAULT_KERNEL",
    "InfectionEvent",
    "LocationPhaseResult",
    "compute_infections",
]

#: Available exposure kernels (see module docstring).  ``"compiled"``
#: additionally needs a C toolchain (``repro.core.ckernel.available``).
KERNELS = ("flat", "grouped", "compiled")
DEFAULT_KERNEL = "flat"


@dataclass(frozen=True)
class InfectionEvent:
    """One successful transmission — the paper's "infect" message."""

    person: int
    location: int
    minute: int  # earliest overlap end among the person's exposures here


@dataclass
class LocationPhaseResult:
    """Infections plus the dynamic-load statistics of the phase."""

    infections: list[InfectionEvent] = field(default_factory=list)
    #: per-location event counts (2 × processed visits), keyed by location id
    events: Counter = field(default_factory=Counter)
    #: per-location S×I interaction counts
    interactions: Counter = field(default_factory=Counter)

    def merge(self, other: "LocationPhaseResult") -> None:
        self.infections.extend(other.infections)
        self.events.update(other.events)
        self.interactions.update(other.interactions)


def compute_infections(
    visit_rows: np.ndarray,
    graph,
    health_state: np.ndarray,
    disease: DiseaseModel,
    transmission: TransmissionModel,
    day: int,
    rng_factory: RngFactory,
    collect_stats: bool = False,
    kernel: str | None = None,
) -> LocationPhaseResult:
    """Run the location phase over the given visit rows.

    Parameters
    ----------
    visit_rows:
        Indices into ``graph``'s visit arrays — the visits that actually
        happen today (interventions already applied).  May span any
        subset of locations; rows of one location must all be present
        (callers split by location, never within one).
    graph:
        A :class:`~repro.synthpop.graph.PersonLocationGraph`.
    health_state:
        Current per-person PTTS state indices.
    collect_stats:
        Also count events/interactions per location (costs one extra
        pass; used when fitting the dynamic load model).
    kernel:
        ``"flat"`` (default) or ``"grouped"`` — see the module
        docstring.  The two are bit-for-bit equivalent.

    Notes
    -----
    Per (location, susceptible) the hazards of all S×I overlaps add and
    a single uniform keyed ``(LOCATION, day, location, person)`` decides
    infection — distributionally identical to per-pair Bernoulli trials
    and, crucially, order-independent.
    """
    obs_span = observe.span(
        "exposure.compute",
        day=day,
        kernel=DEFAULT_KERNEL if kernel is None else kernel,
        visits=int(visit_rows.size),
    )
    with obs_span:
        result = _compute_infections(
            visit_rows, graph, health_state, disease, transmission, day,
            rng_factory, collect_stats, kernel,
        )
        obs_span.set(infections=len(result.infections))
        return result


def _compute_infections(
    visit_rows: np.ndarray,
    graph,
    health_state: np.ndarray,
    disease: DiseaseModel,
    transmission: TransmissionModel,
    day: int,
    rng_factory: RngFactory,
    collect_stats: bool,
    kernel: str | None,
) -> LocationPhaseResult:
    kernel = DEFAULT_KERNEL if kernel is None else kernel
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    result = LocationPhaseResult()
    if visit_rows.size == 0:
        return result
    vp = graph.visit_person[visit_rows]
    vl = graph.visit_location[visit_rows]
    vs = graph.visit_subloc[visit_rows]
    vstart = graph.visit_start[visit_rows]
    vend = graph.visit_end[visit_rows]
    states = health_state[vp]
    sus_mask = disease.is_susceptible[states]
    inf_mask = disease.is_infectious[states]

    if collect_stats:
        locs, counts = np.unique(vl, return_counts=True)
        result.events.update({int(l): int(2 * c) for l, c in zip(locs, counts)})

    # Only locations with at least one infectious *and* one susceptible
    # visit can transmit; restrict the expensive pass to those.
    has_inf = np.zeros(graph.n_locations, dtype=bool)
    has_inf[vl[inf_mask]] = True
    has_sus = np.zeros(graph.n_locations, dtype=bool)
    has_sus[vl[sus_mask]] = True
    active_loc = has_inf & has_sus
    cand = active_loc[vl] & (sus_mask | inf_mask)
    if not cand.any():
        return result

    impl = {
        "flat": _flat_kernel,
        "grouped": _grouped_kernel,
        "compiled": _compiled_kernel,
    }[kernel]
    impl(
        result, cand, vp, vl, vs, vstart, vend, states, sus_mask, inf_mask,
        graph, disease, transmission, day, rng_factory, collect_stats,
    )
    return result


def _flat_kernel(
    result: LocationPhaseResult,
    cand: np.ndarray,
    vp: np.ndarray,
    vl: np.ndarray,
    vs: np.ndarray,
    vstart: np.ndarray,
    vend: np.ndarray,
    states: np.ndarray,
    sus_mask: np.ndarray,
    inf_mask: np.ndarray,
    graph,
    disease: DiseaseModel,
    transmission: TransmissionModel,
    day: int,
    rng_factory: RngFactory,
    collect_stats: bool,
) -> None:
    """Whole-visit-set vectorised kernel: no per-location Python loop."""
    idx = np.flatnonzero(cand)
    s_idx, i_idx, o_start, o_end = blocked_pairwise_exposures(
        vl[idx], vs[idx], vstart[idx], vend[idx], sus_mask[idx], inf_mask[idx]
    )
    if s_idx.size == 0:
        return
    # Restore the grouped kernel's pair order (ascending susceptible
    # row, infectious rows in block order within each) so per-person
    # hazard sums accumulate in the same sequence — float addition is
    # not associative, and bit-for-bit kernel equality is the contract.
    order = np.argsort(s_idx, kind="stable")
    s_idx, i_idx = s_idx[order], i_idx[order]
    o_end = o_end[order]
    overlap = (o_end - o_start[order]).astype(np.float64)

    if collect_stats:
        pair_locs, pair_counts = np.unique(vl[idx[s_idx]], return_counts=True)
        result.interactions.update(
            {int(l): int(c) for l, c in zip(pair_locs, pair_counts)}
        )

    hazards = transmission.hazard(
        overlap,
        disease.infectivity[states[idx[i_idx]]],
        disease.susceptibility[states[idx[s_idx]]],
    )
    # Segment-reduce per (location, person of the susceptible visit):
    # total hazard and earliest potential infection minute.
    key = vl[idx[s_idx]] * np.int64(graph.n_persons) + vp[idx[s_idx]]
    uniq_key, inv = np.unique(key, return_inverse=True)
    total_h = np.bincount(inv, weights=hazards, minlength=uniq_key.size)
    first_minute = np.full(uniq_key.size, np.iinfo(np.int64).max)
    np.minimum.at(first_minute, inv, o_end)
    probs = transmission.probability(total_h)
    locs = uniq_key // graph.n_persons
    persons = uniq_key - locs * graph.n_persons
    u = rng_factory.keyed_uniforms(RngFactory.LOCATION, day, locs, persons)
    for j in np.flatnonzero(u < probs):
        result.infections.append(
            InfectionEvent(
                person=int(persons[j]), location=int(locs[j]), minute=int(first_minute[j])
            )
        )


def _compiled_kernel(
    result: LocationPhaseResult,
    cand: np.ndarray,
    vp: np.ndarray,
    vl: np.ndarray,
    vs: np.ndarray,
    vstart: np.ndarray,
    vend: np.ndarray,
    states: np.ndarray,
    sus_mask: np.ndarray,
    inf_mask: np.ndarray,
    graph,
    disease: DiseaseModel,
    transmission: TransmissionModel,
    day: int,
    rng_factory: RngFactory,
    collect_stats: bool,
) -> None:
    """Flat kernel with the pair stage in C (:mod:`repro.core.ckernel`).

    Bit-identical to ``"flat"``: the C loop adds the same doubles in
    the same order ``np.bincount`` would over the sorted pair array,
    and every transcendental (``log1p`` via the per-state hazard
    table, ``expm1`` in ``probability``, the keyed uniforms) still runs
    through the exact numpy code paths of the other kernels.
    """
    from repro.core import ckernel

    idx = np.flatnonzero(cand)
    # Candidate rows are all epidemiologically relevant (sus | inf), so
    # blocked_pairwise_exposures' `relevant` filter is the identity
    # here and the (location, sublocation) lexsort covers every row.
    loc = np.ascontiguousarray(vl[idx], dtype=np.int64)
    sub = np.ascontiguousarray(vs[idx], dtype=np.int64)
    start = np.ascontiguousarray(vstart[idx], dtype=np.int64)
    end = np.ascontiguousarray(vend[idx], dtype=np.int64)
    state = np.ascontiguousarray(states[idx], dtype=np.int64)
    sus = np.ascontiguousarray(sus_mask[idx], dtype=np.uint8)
    inf = inf_mask[idx]
    n = idx.size

    order = np.lexsort((sub, loc))  # sorted position -> candidate row
    loc_s, sub_s = loc[order], sub[order]
    new_block = np.empty(n, dtype=bool)
    new_block[0] = True
    np.not_equal(loc_s[1:], loc_s[:-1], out=new_block[1:])
    new_block[1:] |= sub_s[1:] != sub_s[:-1]
    block_id_sorted = np.cumsum(new_block) - 1
    n_blocks = int(block_id_sorted[-1]) + 1
    row_block = np.empty(n, dtype=np.int64)
    row_block[order] = block_id_sorted

    # Infectious candidate rows in sorted-position order, segmented by
    # block — the partner iteration order of the flat enumeration.
    inf_sorted = inf[order]
    inf_rows = np.ascontiguousarray(order[inf_sorted], dtype=np.int64)
    ni = np.bincount(block_id_sorted[inf_sorted], minlength=n_blocks)
    inf_off = np.zeros(n_blocks + 1, dtype=np.int64)
    np.cumsum(ni, out=inf_off[1:])

    # One accumulator slot per distinct (location, person) key over the
    # candidate rows — a superset of the flat kernel's pair-derived key
    # set, compacted to the touched slots below.  np.unique sorts, so
    # surviving slots align with the flat kernel's uniq_key order.
    key = loc * np.int64(graph.n_persons) + vp[idx]
    uniq_key, slot = np.unique(key, return_inverse=True)
    slot = np.ascontiguousarray(slot, dtype=np.int64)

    # Per (infectious state, susceptible state) hazard of one overlap
    # minute, computed by the same TransmissionModel call (same clip,
    # same log1p inputs) the flat kernel makes per pair.
    n_states = len(disease.states)
    haz_table = np.ascontiguousarray(
        transmission.hazard(
            1.0,
            np.repeat(disease.infectivity, n_states),
            np.tile(disease.susceptibility, n_states),
        ),
        dtype=np.float64,
    )

    total_h = np.zeros(uniq_key.size, dtype=np.float64)
    first_minute = np.full(uniq_key.size, np.iinfo(np.int64).max, dtype=np.int64)
    pair_count = np.zeros(uniq_key.size, dtype=np.int64)
    pairs = ckernel.accumulate_exposures(
        start, end, state, sus, slot, row_block, inf_rows, inf_off,
        haz_table, n_states, total_h, first_minute, pair_count,
    )
    if pairs == 0:
        return
    touched = pair_count > 0
    uniq_key, total_h = uniq_key[touched], total_h[touched]
    first_minute = first_minute[touched]

    locs = uniq_key // graph.n_persons
    persons = uniq_key - locs * graph.n_persons
    if collect_stats:
        pair_locs, inv_loc = np.unique(locs, return_inverse=True)
        per_loc = np.bincount(
            inv_loc, weights=pair_count[touched], minlength=pair_locs.size
        )
        result.interactions.update(
            {int(l): int(c) for l, c in zip(pair_locs, per_loc)}
        )
    probs = transmission.probability(total_h)
    u = rng_factory.keyed_uniforms(RngFactory.LOCATION, day, locs, persons)
    for j in np.flatnonzero(u < probs):
        result.infections.append(
            InfectionEvent(
                person=int(persons[j]), location=int(locs[j]), minute=int(first_minute[j])
            )
        )


def _grouped_kernel(
    result: LocationPhaseResult,
    cand: np.ndarray,
    vp: np.ndarray,
    vl: np.ndarray,
    vs: np.ndarray,
    vstart: np.ndarray,
    vend: np.ndarray,
    states: np.ndarray,
    sus_mask: np.ndarray,
    inf_mask: np.ndarray,
    graph,
    disease: DiseaseModel,
    transmission: TransmissionModel,
    day: int,
    rng_factory: RngFactory,
    collect_stats: bool,
) -> None:
    """Reference kernel: per-location loop, per-person keyed Generators."""
    idx = np.flatnonzero(cand)
    order = idx[np.argsort(vl[idx], kind="stable")]
    loc_sorted = vl[order]
    boundaries = np.flatnonzero(np.diff(loc_sorted)) + 1
    inf_coef = disease.infectivity
    sus_coef = disease.susceptibility

    for group in np.split(order, boundaries):
        loc = int(vl[group[0]])
        s_idx, i_idx, o_start, o_end = pairwise_exposures(
            vs[group], vstart[group], vend[group], sus_mask[group], inf_mask[group]
        )
        if s_idx.size == 0:
            continue
        if collect_stats:
            result.interactions[loc] += int(s_idx.size)
        g_s = group[s_idx]
        g_i = group[i_idx]
        hazards = transmission.hazard(
            (o_end - o_start).astype(np.float64),
            inf_coef[states[g_i]],
            sus_coef[states[g_s]],
        )
        # Accumulate hazard and earliest potential infection minute per
        # susceptible person at this location.
        persons = vp[g_s]
        uniq_p, inv = np.unique(persons, return_inverse=True)
        total_h = np.bincount(inv, weights=hazards, minlength=uniq_p.size)
        first_minute = np.full(uniq_p.size, np.iinfo(np.int64).max)
        np.minimum.at(first_minute, inv, o_end)
        probs = transmission.probability(total_h)
        for j, p in enumerate(uniq_p):
            u = rng_factory.stream(RngFactory.LOCATION, day, loc, int(p)).random()
            if u < probs[j]:
                result.infections.append(
                    InfectionEvent(person=int(p), location=loc, minute=int(first_minute[j]))
                )
