"""Checkpoint/restart for long simulation campaigns.

The paper's operational context — 24-hour decision cycles over 120–180
simulated days — makes restartability a practical requirement (a
preempted job must not redo a week of compute).  Because all randomness
is keyed by ``(day, entity)``, resuming from a checkpoint reproduces
the uninterrupted run *exactly*; the tests assert bit-equality.

The checkpoint captures the PTTS arrays, the epidemic bookkeeping, the
curve so far, and the declared mutable state of every intervention and
model component (via ``checkpoint_state`` / ``restore_state`` on
:class:`~repro.core.interventions.Intervention`): trigger state in the
JSON header, array-valued state — contact-tracing rosters, quarantine
clocks — as first-class npz arrays.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.metrics import EpiCurve
from repro.core.scenario import Scenario
from repro.core.simulator import SequentialSimulator

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def _component_states(scenario: Scenario) -> tuple[list[dict], dict]:
    """Declared state of every scheduled component, split into the
    JSON-safe header entries and the npz arrays (referenced from the
    header by ``{"__array__": <npz key>}`` markers)."""
    header_states: list[dict] = []
    arrays: dict[str, np.ndarray] = {}
    for i, state in enumerate(scenario.interventions.checkpoint_state()):
        entry: dict = {}
        for key, value in state.items():
            if isinstance(value, np.ndarray):
                akey = f"comp{i}_{key}"
                arrays[akey] = value
                entry[key] = {"__array__": akey}
            else:
                entry[key] = value
        header_states.append(entry)
    return header_states, arrays


def _restore_component_states(
    scenario: Scenario, states: list[dict], data
) -> None:
    resolved = []
    for entry in states:
        state: dict = {}
        for key, value in entry.items():
            if isinstance(value, dict) and "__array__" in value:
                state[key] = np.array(data[value["__array__"]])
            else:
                state[key] = value
        resolved.append(state)
    scenario.interventions.restore_state(resolved)


def save_checkpoint(sim: SequentialSimulator, path: str | Path) -> None:
    """Write the simulator's full state to ``path`` (npz)."""
    path = Path(path)
    curve_arrays = sim_curve(sim)
    states, state_arrays = _component_states(sim.scenario)
    header = {
        "format_version": _FORMAT_VERSION,
        "day": sim.day,
        "seeded": sim._seeded,
        "scenario_seed": sim.scenario.seed,
        "n_persons": sim.scenario.graph.n_persons,
        "graph_name": sim.scenario.graph.name,
        "interventions": states,
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        health_state=sim.health_state,
        days_remaining=sim.days_remaining,
        treatment=sim.treatment,
        ever_infected=sim._ever_infected,
        curve_new=curve_arrays["new_infections"],
        curve_prev=curve_arrays["prevalence"],
        **state_arrays,
    )


def sim_curve(sim: SequentialSimulator) -> dict[str, np.ndarray]:
    """The curve recorded so far (attached by :func:`run_with_checkpointing`
    or reconstructed as empty when stepping manually)."""
    curve = getattr(sim, "_checkpoint_curve", None)
    if curve is None:
        return {
            "new_infections": np.empty(0, dtype=np.int64),
            "prevalence": np.empty(0, dtype=np.float64),
        }
    return curve.as_arrays()


def load_checkpoint(scenario: Scenario, path: str | Path) -> SequentialSimulator:
    """Reconstruct a simulator mid-run from a checkpoint.

    ``scenario`` must be a *fresh* scenario equal to the one that
    produced the checkpoint (same graph, seed and interventions); basic
    identity checks guard against mixups.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValueError("unsupported checkpoint format")
        if header["scenario_seed"] != scenario.seed:
            raise ValueError(
                f"checkpoint was recorded with seed {header['scenario_seed']}, "
                f"scenario has seed {scenario.seed}"
            )
        if header["n_persons"] != scenario.graph.n_persons:
            raise ValueError("checkpoint population size does not match the graph")
        sim = SequentialSimulator(scenario)
        sim.health_state[:] = data["health_state"]
        sim.days_remaining[:] = data["days_remaining"]
        sim.treatment[:] = data["treatment"]
        sim._ever_infected[:] = data["ever_infected"]
        sim.day = int(header["day"])
        sim._seeded = bool(header["seeded"])
        _restore_component_states(scenario, header["interventions"], data)
        curve = EpiCurve()
        for n, p in zip(data["curve_new"].tolist(), data["curve_prev"].tolist()):
            curve.record_day(int(n), float(p))
        sim._checkpoint_curve = curve
    return sim


def run_with_checkpointing(
    scenario: Scenario,
    checkpoint_path: str | Path,
    checkpoint_every: int = 30,
    resume: bool = True,
):
    """Run a scenario to completion, checkpointing periodically.

    If ``resume`` and a checkpoint exists, continues from it.  Returns
    the same :class:`SimulationResult` an uninterrupted run produces.
    """
    from repro.core.metrics import state_histogram
    from repro.core.simulator import SimulationResult

    checkpoint_path = Path(checkpoint_path)
    if resume and checkpoint_path.exists():
        sim = load_checkpoint(scenario, checkpoint_path)
        curve = sim._checkpoint_curve
    else:
        sim = SequentialSimulator(scenario)
        curve = EpiCurve()
        sim._checkpoint_curve = curve
    result = SimulationResult(curve=curve, final_histogram={})
    while sim.day < scenario.n_days:
        day_result, _phase = sim.step_day()
        result.days.append(day_result)
        curve.record_day(day_result.new_infections, day_result.prevalence)
        if sim.day % checkpoint_every == 0 and sim.day < scenario.n_days:
            save_checkpoint(sim, checkpoint_path)
    result.final_histogram = state_histogram(sim.health_state, scenario.disease)
    return result
