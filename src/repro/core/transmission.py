"""Exposure → infection probability.

EpiSimdemics uses the transmission function from Barrett et al. (SC'08):
the probability that susceptible *s* is infected by co-located
infectious *i* over an exposure of ``tau`` minutes is

    p = 1 − exp(τ · ln(1 − r · ρ_i · σ_s))

with base transmissibility ``r`` per unit time, infectivity ``ρ_i`` of
the infectious person's health state and susceptibility ``σ_s`` of the
susceptible's.  For small rates this equals the Poisson/hazard form
``1 − exp(−τ·r·ρ·σ)``; we implement the exact log form and expose the
accumulated *hazard* so that multiple simultaneous exposures compose by
addition (probabilistically equivalent to independent Bernoulli trials
per infectious contact).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TransmissionModel"]


@dataclass(frozen=True)
class TransmissionModel:
    """Transmission coefficients.

    Parameters
    ----------
    transmissibility:
        Base probability per minute of contact at infectivity =
        susceptibility = 1.  The default (1e-4/min) calibrates the
        bundled influenza PTTS to a pandemic-flu-like trajectory on the
        synthetic populations: ~50–70% attack rate with an epidemic
        peak some 4–6 weeks after seeding.
    """

    transmissibility: float = 1.0e-4

    def __post_init__(self) -> None:
        if not (0.0 <= self.transmissibility < 1.0):
            raise ValueError("transmissibility must be in [0, 1)")

    def hazard(
        self,
        overlap_minutes: np.ndarray | float,
        infectivity: np.ndarray | float,
        susceptibility: np.ndarray | float,
    ) -> np.ndarray | float:
        """Per-pair infection hazard; hazards across contacts add."""
        # -ln(1 - r·ρ·σ) per minute of exposure.
        rate = self.transmissibility * np.asarray(infectivity) * np.asarray(susceptibility)
        rate = np.clip(rate, 0.0, 1.0 - 1e-12)
        return np.asarray(overlap_minutes) * (-np.log1p(-rate))

    def probability(self, total_hazard: np.ndarray | float) -> np.ndarray | float:
        """Infection probability from an accumulated hazard."""
        return -np.expm1(-np.asarray(total_hazard, dtype=np.float64))

    def pair_probability(
        self,
        overlap_minutes: np.ndarray | float,
        infectivity: np.ndarray | float,
        susceptibility: np.ndarray | float,
    ) -> np.ndarray | float:
        """Convenience: single-pair infection probability."""
        return self.probability(self.hazard(overlap_minutes, infectivity, susceptibility))
