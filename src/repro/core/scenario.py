"""Scenario: everything needed to run one simulation.

A :class:`Scenario` bundles the population graph, the PTTS disease
model, the transmission coefficients, the intervention schedule, the
horizon and the seeding policy.  Both the sequential reference
simulator and the chare-parallel runtime consume the same scenario —
and, because all randomness is keyed from the scenario seed, produce
the same epidemic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.disease import DiseaseModel, influenza_model
from repro.core.interventions import InterventionSchedule
from repro.core.transmission import TransmissionModel
from repro.synthpop.graph import PersonLocationGraph
from repro.util.rng import RngFactory

__all__ = ["Scenario"]


@dataclass
class Scenario:
    """One fully specified simulation.

    Parameters
    ----------
    graph:
        The person–location graph.
    disease:
        PTTS model; defaults to the H1N1-like influenza template.
    transmission:
        Transmission coefficients.
    interventions:
        Intervention schedule.  Intervention objects hold mutable
        trigger/roster state, but every backend calls
        :meth:`~repro.core.interventions.InterventionSchedule.reset`
        at run start, so one scenario can safely be run many times —
        each run reproduces the same epidemic.
    n_days:
        Simulated days.  The paper notes typical studies run 120–180
        days; tests use much shorter horizons.
    initial_infections:
        Either an int (that many index cases drawn with a keyed stream)
        or an explicit array of person ids.
    seed:
        Root seed for every stochastic component of the run.
    """

    graph: PersonLocationGraph
    disease: DiseaseModel = field(default_factory=influenza_model)
    transmission: TransmissionModel = field(default_factory=TransmissionModel)
    interventions: InterventionSchedule = field(default_factory=InterventionSchedule)
    n_days: int = 120
    initial_infections: int | np.ndarray = 5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_days < 1:
            raise ValueError("n_days must be positive")
        if isinstance(self.initial_infections, (int, np.integer)):
            if self.initial_infections < 0:
                raise ValueError("initial_infections must be non-negative")
            if self.initial_infections > self.graph.n_persons:
                raise ValueError("more index cases than persons")

    @property
    def rng_factory(self) -> RngFactory:
        return RngFactory(self.seed)

    def index_cases(self) -> np.ndarray:
        """Resolve the index-case person ids for this scenario."""
        if isinstance(self.initial_infections, (int, np.integer)):
            rng = self.rng_factory.stream(RngFactory.INTERVENTION, -1)
            return rng.choice(
                self.graph.n_persons, size=int(self.initial_infections), replace=False
            ).astype(np.int64)
        cases = np.asarray(self.initial_infections, dtype=np.int64)
        if cases.size and (cases.min() < 0 or cases.max() >= self.graph.n_persons):
            raise ValueError("index case id out of range")
        return cases
