"""Sequential reference simulator — the paper's six-step day loop.

This is the semantic ground truth: the chare-parallel runtime in
:mod:`repro.core.parallel` must produce exactly the same epidemic
trajectory (asserted by integration tests).  Per day (paper §II-B):

1. each person recalculates health state and decides the day's visits
   (interventions applied), emitting *visit* messages;
2. synchronisation (trivially satisfied here);
3. each location builds its DES from the visit messages and computes
   susceptible×infectious interactions, emitting *infect* messages;
4. synchronisation;
5. infected persons update their health state;
6. global system state is updated.

The latent-period argument (an infection today can never make someone
infectious *today*) is what allows the whole day to be processed in
one parallel sweep without violating causality — and equally what lets
us run steps 1/3/5 as whole-population vectorised passes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro import observe
from repro.core.disease import UNTREATED
from repro.core.exposure import LocationPhaseResult, compute_infections
from repro.core.interventions import DayContext
from repro.core.metrics import EpiCurve, state_histogram
from repro.core.scenario import Scenario

__all__ = ["DayResult", "SimulationResult", "SequentialSimulator"]


@dataclass
class DayResult:
    """What one simulated day produced."""

    day: int
    visits_made: int
    new_infections: int
    transitions: int
    prevalence: float


@dataclass
class SimulationResult:
    """Full-run output: the epidemic curve plus final state."""

    curve: EpiCurve
    final_histogram: dict[str, int]
    days: list[DayResult] = field(default_factory=list)
    #: summed per-location DES statistics (when stats collection is on)
    location_events: Counter = field(default_factory=Counter)
    location_interactions: Counter = field(default_factory=Counter)

    @property
    def total_infections(self) -> int:
        return self.curve.cumulative_infections[-1] if self.curve.n_days else 0


class SequentialSimulator:
    """Runs a :class:`~repro.core.scenario.Scenario` to completion.

    Parameters
    ----------
    scenario:
        The simulation specification.
    collect_location_stats:
        Accumulate per-location event/interaction counts across the run
        (needed when fitting the load model; ~15% slower).
    kernel:
        Exposure-kernel selection passed through to
        :func:`~repro.core.exposure.compute_infections` (``"flat"`` /
        ``"grouped"``; None = the module default).  Kernels are
        bit-for-bit equivalent — this is a performance knob and the
        lever for old-vs-new differential testing.
    """

    def __init__(
        self,
        scenario: Scenario,
        collect_location_stats: bool = False,
        kernel: str | None = None,
    ):
        self.scenario = scenario
        self.collect_location_stats = collect_location_stats
        self.kernel = kernel
        g = scenario.graph
        self.rng_factory = scenario.rng_factory
        self.health_state, self.days_remaining = scenario.disease.initial_health(g.n_persons)
        self.treatment = np.full(g.n_persons, UNTREATED, dtype=np.int32)
        self._ever_infected = np.zeros(g.n_persons, dtype=bool)
        self.day = 0
        self._seeded = False
        # Interventions/components hold per-run trigger state; clearing
        # it here makes one Scenario object reusable across runs.
        scenario.interventions.reset()

    @classmethod
    def from_spec(
        cls, spec, graph=None, collect_location_stats: bool = False
    ) -> "SequentialSimulator":
        """Build from a :class:`repro.spec.RunSpec` (the canonical run
        definition); ``graph`` short-circuits the population build."""
        return cls(
            spec.build_scenario(graph),
            collect_location_stats=collect_location_stats,
            kernel=spec.runtime.kernel,
        )

    # ------------------------------------------------------------------
    def _seed_index_cases(self) -> int:
        cases = self.scenario.index_cases()
        infected = self.scenario.disease.infect(
            cases, self.health_state, self.days_remaining, self.treatment,
            day=-1, rng_factory=self.rng_factory,
        )
        self._ever_infected[infected] = True
        return int(infected.size)

    def _prevalence(self) -> float:
        # "currently infected" = ever infected, not susceptible anymore,
        # and not yet settled into a terminal (absorbing, inert) state.
        d = self.scenario.disease
        if not hasattr(self, "_terminal_states"):
            # Non-infectious absorbing states are terminal even when
            # partially susceptible (e.g. a cross-immune recovered
            # state): the person is not "currently infected" anymore.
            self._terminal_states = np.array(
                [s.dwell.kind.name == "FOREVER" and not s.is_infectious
                 for s in d.states]
            )
        infected_now = self._ever_infected & (self.health_state != d.susceptible_index)
        infected_now &= ~self._terminal_states[self.health_state]
        return float(infected_now.sum()) / max(1, self.scenario.graph.n_persons)

    # ------------------------------------------------------------------
    def step_day(self) -> tuple[DayResult, "LocationPhaseResult"]:
        """Execute one simulated day; return its result and phase detail."""
        with observe.span("sim.day", day=self.day):
            return self._step_day()

    def _step_day(self) -> tuple[DayResult, "LocationPhaseResult"]:
        sc = self.scenario
        g = sc.graph
        d = sc.disease
        day = self.day

        seeded = 0
        if not self._seeded:
            seeded = self._seed_index_cases()
            self._seeded = True

        # Day context uses start-of-day (pre-transition) prevalence so
        # central intervention decisions are identical in every
        # execution mode.
        ctx = DayContext(
            day=day,
            graph=g,
            disease=d,
            health_state=self.health_state,
            treatment=self.treatment,
            prevalence=self._prevalence(),
            cumulative_attack=float(self._ever_infected.mean()),
            rng_factory=self.rng_factory,
            days_remaining=self.days_remaining,
        )
        sc.interventions.update_treatments(ctx)

        # Step 1a: recalculate health state (PTTS dwell expirations).
        transitions = d.advance_day(
            self.health_state, self.days_remaining, self.treatment, day, self.rng_factory
        )

        # Step 1b: decide today's visits (interventions filter).
        keep = sc.interventions.visit_mask(ctx)
        visit_rows = np.flatnonzero(keep)

        # Steps 2–4: location phase (sync points are implicit here; the
        # parallel runtime runs real completion-detection protocols).
        phase = compute_infections(
            visit_rows,
            g,
            self.health_state,
            d,
            sc.transmission,
            day,
            self.rng_factory,
            collect_stats=self.collect_location_stats,
            kernel=self.kernel,
        )

        # Step 5: apply infect messages.
        new_persons = np.asarray([ev.person for ev in phase.infections], dtype=np.int64)
        infected = d.infect(
            new_persons, self.health_state, self.days_remaining, self.treatment,
            day=day, rng_factory=self.rng_factory,
        )
        self._ever_infected[infected] = True

        # Post-apply hook: components edit state centrally, after the
        # day's infections are in, before prevalence is recorded.  The
        # parallel backends run this at the same algorithmic point.
        sc.interventions.post_apply(ctx)

        self.day += 1
        return DayResult(
            day=day,
            visits_made=int(visit_rows.size),
            new_infections=int(infected.size) + seeded,
            transitions=int(transitions.size),
            prevalence=self._prevalence(),
        ), phase

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run all scenario days; return the aggregated result."""
        with observe.span("sequential.run", days=self.scenario.n_days):
            curve = EpiCurve()
            result = SimulationResult(curve=curve, final_histogram={})
            for _ in range(self.scenario.n_days):
                day_result, phase = self.step_day()
                result.days.append(day_result)
                curve.record_day(day_result.new_infections, day_result.prevalence)
                if self.collect_location_stats:
                    result.location_events.update(phase.events)
                    result.location_interactions.update(phase.interactions)
            result.final_histogram = state_histogram(self.health_state, self.scenario.disease)
            return result
