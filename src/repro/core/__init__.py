"""EpiSimdemics core: disease model, per-day algorithm, interventions.

This package implements the paper's Section II — the agent-based
contagion simulation itself:

* :mod:`repro.core.disease` — the PTTS health-state machine,
* :mod:`repro.core.transmission` — the exposure→infection probability,
* :mod:`repro.core.des` — the per-location sequential discrete-event
  simulation of arrive/depart events,
* :mod:`repro.core.interventions` — the intervention DSL (vaccination,
  school closure, ...),
* :mod:`repro.core.simulator` — the sequential reference simulator
  executing the six-step per-day algorithm,
* :mod:`repro.core.parallel` — the same algorithm as chares on the
  simulated Charm-like runtime (imported lazily to avoid a hard
  dependency cycle with :mod:`repro.charm`).
"""

from repro.core.disease import (
    DiseaseModel,
    HealthState,
    DwellDistribution,
    Transition,
    influenza_model,
    sir_model,
)
from repro.core.transmission import TransmissionModel
from repro.core.des import LocationDES, pairwise_exposures, Interaction
from repro.core.interventions import (
    Intervention,
    Vaccination,
    SchoolClosure,
    WorkClosure,
    StayHomeWhenSymptomatic,
    WeekendSchedule,
    InterventionSchedule,
    parse_intervention_script,
)
from repro.core.pttsl import parse_ptts, format_ptts
from repro.core.scenario import Scenario
from repro.core.simulator import SequentialSimulator, DayResult, SimulationResult

__all__ = [
    "DiseaseModel",
    "HealthState",
    "DwellDistribution",
    "Transition",
    "influenza_model",
    "sir_model",
    "TransmissionModel",
    "LocationDES",
    "pairwise_exposures",
    "Interaction",
    "Intervention",
    "Vaccination",
    "SchoolClosure",
    "WorkClosure",
    "StayHomeWhenSymptomatic",
    "WeekendSchedule",
    "InterventionSchedule",
    "parse_intervention_script",
    "parse_ptts",
    "format_ptts",
    "Scenario",
    "SequentialSimulator",
    "DayResult",
    "SimulationResult",
]
