"""C hot path for the exposure kernel (built on demand via ``ctypes``).

The ``"compiled"`` exposure kernel replaces the pair-materialising part
of the ``"flat"`` kernel — segmented S×I enumeration, per-pair hazard
evaluation, per-(location, person) hazard/bincount reduction and the
earliest-minute ``minimum.at`` — with one streaming C loop that never
allocates a per-pair array.  Everything around it (the candidate
filter, the ``(location, sublocation)`` lexsort, the infection draw)
stays in numpy, which is what keeps the result **bit-identical** to
the other kernels:

* integer overlap arithmetic and IEEE-754 double multiply/add are
  exactly specified, and the C loop performs them in precisely the
  order ``np.bincount`` accumulates the sorted pair array (ascending
  susceptible row, block order within a row);
* every transcendental stays in numpy — the per-pair
  ``-log1p(-rate)`` factor only depends on the (infectious state,
  susceptible state) pair, so it is precomputed as an
  ``n_states × n_states`` table with the *same*
  :meth:`~repro.core.transmission.TransmissionModel.hazard` call the
  flat kernel makes, and ``probability``/``keyed_uniforms`` run on the
  reduced per-person arrays exactly as before.

The shared library is compiled once per source hash with the system C
compiler (``$CC``, else ``cc``/``gcc``/``clang``) into a cache
directory and memoised per process; forked SMP workers inherit the
mapping.  ``-ffp-contract=off`` keeps the compiler from fusing the
multiply-add into an FMA that would change the bits.

No toolchain (or ``REPRO_NO_CKERNEL=1``) simply means
:func:`available` is ``False``: callers fall back to the pure-numpy
kernels and tests skip cleanly — nothing in the repo *requires* a
compiler.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import time
from pathlib import Path

import numpy as np

__all__ = ["available", "build_error", "accumulate_exposures", "cache_dir"]

C_SOURCE = r"""
#include <stdint.h>

/* Accumulate S x I exposure hazards, streaming, without materialising
 * pairs.  Rows are the day's candidate visits (every one susceptible
 * or infectious at an active location).  Susceptible rows are walked
 * in ascending row order and their infectious partners in sorted
 * (location, sublocation)-block order -- the exact accumulation
 * sequence of the flat kernel's sort-by-susceptible + bincount, so
 * the double sums match bit for bit.
 *
 * Returns the number of interacting pairs (positive overlap). */
int64_t repro_accumulate_exposures(
    int64_t n_rows,
    const int64_t *vstart,        /* per candidate row: visit start   */
    const int64_t *vend,          /* per candidate row: visit end     */
    const int64_t *state,         /* per candidate row: health state  */
    const uint8_t *sus,           /* per candidate row: susceptible?  */
    const int64_t *slot,          /* per candidate row: (loc, person)
                                     accumulator index                */
    const int64_t *row_block,     /* per candidate row: (loc, subloc)
                                     block id                         */
    const int64_t *inf_rows,      /* infectious candidate rows, in
                                     sorted-position order            */
    const int64_t *inf_off,       /* per block: [start, end) into
                                     inf_rows (n_blocks + 1 entries)  */
    const double *haz_table,      /* [inf_state * n_states + sus_state]
                                     = hazard per overlap minute      */
    int64_t n_states,
    double *total_hazard,         /* out, per slot: summed hazard     */
    int64_t *first_minute,        /* out, per slot: min overlap end
                                     (init to INT64_MAX)              */
    int64_t *pair_count)          /* out, per slot: interacting pairs */
{
    int64_t pairs = 0;
    for (int64_t r = 0; r < n_rows; ++r) {
        if (!sus[r]) continue;
        const int64_t b = row_block[r];
        const int64_t k0 = inf_off[b], k1 = inf_off[b + 1];
        if (k0 == k1) continue;
        const int64_t s0 = vstart[r], e0 = vend[r];
        const int64_t sl = slot[r];
        const double *tab = haz_table + state[r];  /* column of sus state */
        double acc = total_hazard[sl];
        int64_t fmin = first_minute[sl];
        int64_t hits = 0;
        for (int64_t k = k0; k < k1; ++k) {
            const int64_t ri = inf_rows[k];
            if (ri == r) continue;                 /* no self pairing */
            const int64_t os = s0 > vstart[ri] ? s0 : vstart[ri];
            const int64_t oe = e0 < vend[ri] ? e0 : vend[ri];
            if (oe <= os) continue;
            acc += (double)(oe - os) * tab[state[ri] * n_states];
            if (oe < fmin) fmin = oe;
            ++hits;
        }
        total_hazard[sl] = acc;
        first_minute[sl] = fmin;
        pair_count[sl] += hits;
        pairs += hits;
    }
    return pairs;
}
"""

_I64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_U8 = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")
_F64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")

#: memoised per process: None = not tried yet, False = unavailable
_lib: ctypes.CDLL | None | bool = None
_build_error: str | None = None


def cache_dir() -> Path:
    """Directory the compiled library is cached in (override with
    ``REPRO_CKERNEL_CACHE``)."""
    env = os.environ.get("REPRO_CKERNEL_CACHE")
    if env:
        return Path(env)
    return Path(tempfile.gettempdir()) / f"repro-ckernel-{os.getuid()}"


def _find_compiler() -> str | None:
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return cc
    for candidate in ("cc", "gcc", "clang"):
        if shutil.which(candidate):
            return candidate
    return None


#: a lock file untouched for this long belongs to a dead builder
_LOCK_STALE_SECONDS = 60.0
#: give up waiting on someone else's build after this long
_LOCK_WAIT_SECONDS = 120.0


def _acquire_build_lock(lock: Path, out: Path) -> bool:
    """Serialise concurrent builders on an ``O_CREAT|O_EXCL`` lock file.

    Returns True when this process holds the lock (and must build),
    False when the library appeared while waiting.  A lock whose mtime
    stops advancing for :data:`_LOCK_STALE_SECONDS` is stolen — the
    holder died mid-compile (e.g. a killed test worker) and must not
    wedge every later process.
    """
    deadline = time.monotonic() + _LOCK_WAIT_SECONDS
    while True:
        if out.exists():
            return False
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = time.time() - lock.stat().st_mtime
            except OSError:
                continue  # holder just released; retry immediately
            if age > _LOCK_STALE_SECONDS:
                try:
                    lock.unlink()
                except OSError:
                    pass
                continue
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"timed out waiting for a concurrent C kernel build ({lock})"
                )
            time.sleep(0.05)
            continue
        try:
            os.write(fd, str(os.getpid()).encode())
        finally:
            os.close(fd)
        return True


def _compile() -> Path:
    """Build (or reuse) the shared library; raises on any failure.

    Concurrent-safe at both levels: a build lock keeps N fresh
    processes from all running the compiler, and the final atomic
    ``os.replace`` means even an unlocked straggler can only ever
    install a complete library.
    """
    tag = hashlib.sha256(C_SOURCE.encode()).hexdigest()[:16]
    out = cache_dir() / f"exposure-{tag}.so"
    if out.exists():
        return out
    cc = _find_compiler()
    if cc is None:
        raise RuntimeError("no C compiler found (set $CC or install cc/gcc/clang)")
    out.parent.mkdir(parents=True, exist_ok=True)
    lock = out.with_suffix(".lock")
    if not _acquire_build_lock(lock, out):
        return out
    src = out.with_suffix(f".{os.getpid()}.c")
    tmp = out.with_suffix(f".{os.getpid()}.so.tmp")
    try:
        if out.exists():  # finished while we raced for the lock
            return out
        src.write_text(C_SOURCE)
        # -ffp-contract=off: an FMA would change the multiply-add bits
        # vs numpy; bit-exactness across kernels is the contract.
        subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-ffp-contract=off",
             "-fno-fast-math", str(src), "-o", str(tmp)],
            check=True, capture_output=True, text=True,
        )
        os.replace(tmp, out)  # atomic: a partial .so can never be seen
    except subprocess.CalledProcessError as exc:
        raise RuntimeError(f"C kernel build failed:\n{exc.stderr}") from exc
    finally:
        for leftover in (src, tmp):
            try:
                leftover.unlink()
            except OSError:
                pass
        try:
            lock.unlink()
        except OSError:
            pass
    return out


def _load() -> ctypes.CDLL | bool:
    global _lib, _build_error
    if _lib is not None:
        return _lib
    if os.environ.get("REPRO_NO_CKERNEL", "") not in ("", "0"):
        _build_error = "disabled by REPRO_NO_CKERNEL"
        _lib = False
        return _lib
    try:
        lib = ctypes.CDLL(str(_compile()))
        fn = lib.repro_accumulate_exposures
        fn.restype = ctypes.c_int64
        fn.argtypes = [
            ctypes.c_int64, _I64, _I64, _I64, _U8, _I64, _I64, _I64, _I64,
            _F64, ctypes.c_int64, _F64, _I64, _I64,
        ]
        _lib = lib
    except (RuntimeError, OSError) as exc:
        _build_error = str(exc)
        _lib = False
    return _lib


def available() -> bool:
    """True iff the compiled kernel can be (or has been) built and loaded."""
    return _load() is not False


def build_error() -> str | None:
    """Why :func:`available` is False (None while available/untried)."""
    available()
    return _build_error


def accumulate_exposures(
    vstart: np.ndarray,
    vend: np.ndarray,
    state: np.ndarray,
    sus: np.ndarray,
    slot: np.ndarray,
    row_block: np.ndarray,
    inf_rows: np.ndarray,
    inf_off: np.ndarray,
    haz_table: np.ndarray,
    n_states: int,
    total_hazard: np.ndarray,
    first_minute: np.ndarray,
    pair_count: np.ndarray,
) -> int:
    """Run the C accumulation loop; returns the interacting-pair count.

    All array arguments must be C-contiguous with the dtypes of the C
    signature; ``total_hazard`` / ``first_minute`` / ``pair_count`` are
    written in place (callers initialise them).
    """
    lib = _load()
    if lib is False:
        raise RuntimeError(f"compiled kernel unavailable: {_build_error}")
    return int(
        lib.repro_accumulate_exposures(
            vstart.size, vstart, vend, state, sus, slot, row_block,
            inf_rows, inf_off, haz_table, n_states,
            total_hazard, first_minute, pair_count,
        )
    )
