"""The named-scenario registry.

A *scenario definition* bundles a PTTS template with the model
components that animate it, under a stable name with overridable
default parameters.  The registry is what the CLI surfaces
(``repro run --scenario <name>``, ``repro scenarios list``), what
:class:`repro.spec.RunSpec` resolves its ``scenario`` field against,
and what the scenario differential oracle
(:func:`repro.validate.oracle.run_scenario_matrix`) iterates to
certify every registered scenario bit-identical across backends.

>>> sorted(names())
['contact-tracing', 'hospital-capacity', 'turnover', 'two-variant', 'waning-vaccination']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.disease import DiseaseModel, influenza_model, sir_model
from repro.core.interventions import Intervention, InterventionSchedule
from repro.scenarios.components import (
    DemographicTurnover,
    HospitalCapacity,
    TestTraceQuarantine,
    VariantAssignment,
    WaningVaccination,
)
from repro.scenarios.models import hospital_model, two_variant_model, waning_model

__all__ = [
    "ScenarioDefinition",
    "register",
    "get",
    "names",
    "build_components",
    "build_scenario",
]


@dataclass(frozen=True)
class ScenarioDefinition:
    """One named, parameterised scenario.

    ``builder(**params)`` returns ``(disease_model, components)``;
    ``defaults`` names every accepted parameter with its default value
    (overrides of unknown parameters are rejected, which is what makes
    a :class:`~repro.scenarios.spec.ScenarioSpec` validatable without
    building anything).

    >>> get("turnover").params()["rate"]
    0.1
    """

    name: str
    description: str
    builder: Callable[..., tuple[DiseaseModel, list[Intervention]]]
    defaults: dict = field(default_factory=dict)

    def params(self, **overrides) -> dict:
        """Defaults merged with ``overrides`` (unknown keys rejected)."""
        unknown = sorted(set(overrides) - set(self.defaults))
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} has no parameter(s) {unknown} "
                f"(accepted: {sorted(self.defaults)})"
            )
        return {**self.defaults, **overrides}

    def build(self, **overrides) -> tuple[DiseaseModel, list[Intervention]]:
        """Fresh ``(disease, components)`` for one run."""
        return self.builder(**self.params(**overrides))


_REGISTRY: dict[str, ScenarioDefinition] = {}


def register(defn: ScenarioDefinition) -> ScenarioDefinition:
    """Add a definition to the registry (name must be unused).

    >>> register(get("turnover"))
    Traceback (most recent call last):
    ...
    ValueError: scenario 'turnover' is already registered
    """
    if defn.name in _REGISTRY:
        raise ValueError(f"scenario {defn.name!r} is already registered")
    _REGISTRY[defn.name] = defn
    return defn


def get(name: str) -> ScenarioDefinition:
    """Look a definition up by name.

    >>> get("waning-vaccination").name
    'waning-vaccination'
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r} (registered: {sorted(_REGISTRY)})"
        ) from None


def names() -> list[str]:
    """Sorted registered scenario names.

    >>> "two-variant" in names()
    True
    """
    return sorted(_REGISTRY)


def build_components(
    name: str, **overrides
) -> tuple[DiseaseModel, list[Intervention]]:
    """``(disease, components)`` for the named scenario.

    >>> disease, components = build_components("hospital-capacity", beds=3)
    >>> components[0].beds
    3
    """
    return get(name).build(**overrides)


def build_scenario(
    name: str,
    graph,
    *,
    n_days: int = 16,
    seed: int = 0,
    initial_infections: int = 10,
    transmissibility: float = 2.0e-4,
    params: dict | None = None,
    extra_interventions: list[Intervention] | None = None,
):
    """A full :class:`~repro.core.scenario.Scenario` for the named entry.

    Model components come first in the schedule, then any
    ``extra_interventions`` (behavioural interventions compose freely
    with scenario components).

    >>> from repro.spec import PopulationSpec
    >>> g = PopulationSpec(n_persons=60, name="doc").build()
    >>> sc = build_scenario("turnover", g, n_days=2)
    >>> len(sc.interventions)
    1
    """
    from repro.core.scenario import Scenario
    from repro.core.transmission import TransmissionModel

    disease, components = build_components(name, **(params or {}))
    return Scenario(
        graph=graph,
        disease=disease,
        transmission=TransmissionModel(transmissibility),
        interventions=InterventionSchedule(
            components + list(extra_interventions or [])
        ),
        n_days=n_days,
        seed=seed,
        initial_infections=initial_infections,
    )


# ----------------------------------------------------------------------
# the built-in scenarios
# ----------------------------------------------------------------------
def _waning(coverage, day, efficacy, wane_lo, wane_hi):
    disease = waning_model(efficacy=efficacy, wane_lo=wane_lo, wane_hi=wane_hi)
    return disease, [WaningVaccination(coverage=coverage, day=day)]


def _tracing(detection, report_delay, quarantine_days, compliance):
    return influenza_model(), [
        TestTraceQuarantine(
            detection=detection,
            report_delay=report_delay,
            quarantine_days=quarantine_days,
            compliance=compliance,
        )
    ]


def _hospital(beds, hospitalization, mortality, overflow_mortality):
    disease = hospital_model(
        hospitalization=hospitalization,
        mortality=mortality,
        overflow_mortality=overflow_mortality,
    )
    return disease, [HospitalCapacity(beds=beds)]


def _turnover(rate):
    return sir_model(), [DemographicTurnover(rate=rate)]


def _two_variant(cross_immunity, variant_b_infectivity, bias):
    disease = two_variant_model(
        cross_immunity=cross_immunity,
        variant_b_infectivity=variant_b_infectivity,
    )
    return disease, [VariantAssignment(bias=bias)]


register(ScenarioDefinition(
    name="waning-vaccination",
    description="vaccinate into a partially immune state that wanes "
                "back to susceptible on its own clock",
    builder=_waning,
    defaults={"coverage": 0.6, "day": 2, "efficacy": 0.6,
              "wane_lo": 4, "wane_hi": 8},
))
register(ScenarioDefinition(
    name="contact-tracing",
    description="symptomatic testing with reporting delay, household "
                "tracing and quarantine compliance",
    builder=_tracing,
    defaults={"detection": 0.5, "report_delay": 2,
              "quarantine_days": 7, "compliance": 0.8},
))
register(ScenarioDefinition(
    name="hospital-capacity",
    description="finite hospital ward; overflow patients take the "
                "higher-mortality branch",
    builder=_hospital,
    defaults={"beds": 5, "hospitalization": 0.3, "mortality": 0.1,
              "overflow_mortality": 0.4},
))
register(ScenarioDefinition(
    name="turnover",
    description="births and deaths: terminal-state persons are "
                "replaced by fresh susceptibles",
    builder=_turnover,
    defaults={"rate": 0.1},
))
register(ScenarioDefinition(
    name="two-variant",
    description="two co-circulating variants with partial "
                "cross-immunity and frequency-dependent takeover",
    builder=_two_variant,
    defaults={"cross_immunity": 0.7, "variant_b_infectivity": 1.3,
              "bias": 0.5},
))
