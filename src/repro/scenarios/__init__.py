"""repro.scenarios — pluggable disease/intervention model components.

The paper's intervention DSL (§II-A) describes *composable* epidemic
scenarios: vaccination campaigns, behavioural changes, co-circulating
strains.  This package generalises the repo's hardcoded intervention
pair into a model-component layer over the existing PTTS machinery:

* :mod:`~repro.scenarios.models` — PTTS templates with the extra
  states components need (waning immunity, hospital overflow,
  per-variant lanes), compiled into the same flat arrays every
  exposure kernel and backend consumes;
* :mod:`~repro.scenarios.components` — the components themselves,
  hooked into the day loop's three phases with keyed RNG so every
  backend reproduces the same epidemic bit for bit;
* :mod:`~repro.scenarios.registry` — named scenario definitions
  (``repro scenarios list``), overridable parameters included;
* :mod:`~repro.scenarios.spec` — the hashable
  :class:`~repro.scenarios.spec.ScenarioSpec` that
  :class:`repro.spec.RunSpec` embeds and the lab sweeps over.

>>> from repro.scenarios import names, build_components
>>> disease, components = build_components("waning-vaccination")
>>> "V" in disease.index
True
"""

from repro.scenarios.components import (
    DemographicTurnover,
    HospitalCapacity,
    ModelComponent,
    TestTraceQuarantine,
    VariantAssignment,
    WaningVaccination,
)
from repro.scenarios.models import hospital_model, two_variant_model, waning_model
from repro.scenarios.registry import (
    ScenarioDefinition,
    build_components,
    build_scenario,
    get,
    names,
    register,
)
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "ModelComponent",
    "WaningVaccination",
    "TestTraceQuarantine",
    "HospitalCapacity",
    "DemographicTurnover",
    "VariantAssignment",
    "waning_model",
    "hospital_model",
    "two_variant_model",
    "ScenarioDefinition",
    "ScenarioSpec",
    "register",
    "get",
    "names",
    "build_components",
    "build_scenario",
]
