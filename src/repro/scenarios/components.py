"""Pluggable model components — the scenario building blocks.

Each component subclasses the :class:`~repro.core.interventions.Intervention`
protocol and overrides a subset of its day-phase hooks:

* ``update_treatments`` — central, before the day's PTTS transitions
  (variant routing, quarantine roster maintenance);
* ``filter_visits`` — during the person phase, possibly on a row
  subset owned by one PE (quarantine keeps people home);
* ``post_apply`` — central, after the apply phase in every backend
  (vaccination moving persons into a waning state, hospital overflow,
  demographic turnover).

Every stochastic choice is keyed under the dedicated
:data:`repro.util.rng.RngFactory.SCENARIO` prefix by ``(day, person)``
with a per-purpose salt, so a scenario's epidemic is bit-identical on
the sequential, chare-parallel and shared-memory backends — the
differential oracle (:func:`repro.validate.oracle.run_scenario_matrix`)
certifies this for every registered scenario.

Components also *declare* their behaviour: checkpointable state
(:meth:`~repro.core.interventions.Intervention.checkpoint_state`),
out-of-PTTS state edits for the invariant checker
(:meth:`~repro.core.interventions.Intervention.extra_transitions`),
and — for :class:`TestTraceQuarantine`, whose visit filter depends on
a centrally maintained roster — per-day wire state broadcast to the
forked SMP workers.
"""

from __future__ import annotations

import numpy as np

from repro.core.disease import FOREVER, UNTREATED, VACCINATED, DiseaseModel
from repro.core.interventions import DayContext, Intervention, _Trigger
from repro.util.rng import RngFactory

__all__ = [
    "ModelComponent",
    "WaningVaccination",
    "TestTraceQuarantine",
    "HospitalCapacity",
    "DemographicTurnover",
    "VariantAssignment",
]


def _predecessors(disease: DiseaseModel, target: str) -> list[str]:
    """Names of states with a declared transition into ``target``."""
    preds = []
    for s in disease.states:
        for trs in s.transitions.values():
            if any(tr.target == target for tr in trs):
                preds.append(s.name)
                break
    return preds


class ModelComponent(Intervention):
    """Marker base for scenario components.

    Identical to :class:`~repro.core.interventions.Intervention` — the
    subclass exists so scenario code reads as *model components* (they
    edit disease state, not just behaviour) and so tools can tell the
    two families apart.

    >>> issubclass(ModelComponent, Intervention)
    True
    """


class WaningVaccination(ModelComponent):
    """One-shot vaccination into a finite, waning vaccine state.

    On the trigger day, ``coverage`` of currently susceptible persons
    move into ``vaccine_state`` (a partially immune PTTS state whose
    dwell expires back to susceptible — see
    :func:`repro.scenarios.models.waning_model`) and are tagged with
    the ``VACCINATED`` treatment; the tag is cleared once the person
    wanes back to ``S``.  Unlike the plain
    :class:`~repro.core.interventions.Vaccination` (a pure treatment
    flip), protection here lives in the state graph: it reduces
    susceptibility *now* and disappears on its own clock.

    >>> c = WaningVaccination(coverage=0.4, day=2)
    >>> sorted(c.checkpoint_state())
    ['done', 'fired_on']
    """

    _SALT_SELECT = 0
    _SALT_DWELL = 1

    def __init__(self, coverage: float, day: int = 0, vaccine_state: str = "V"):
        if not (0.0 <= coverage <= 1.0):
            raise ValueError("coverage must be in [0, 1]")
        self.coverage = coverage
        self.vaccine_state = vaccine_state
        self.trigger = _Trigger(day=day, duration=1)
        self._done = False

    def update_treatments(self, ctx: DayContext) -> None:
        d = ctx.disease
        waned = (ctx.health_state == d.susceptible_index) & (
            ctx.treatment == VACCINATED
        )
        ctx.treatment[waned] = UNTREATED

    def post_apply(self, ctx: DayContext) -> None:
        if self._done or not self.trigger.active(ctx):
            return
        self._done = True
        d = ctx.disease
        v = d.index[self.vaccine_state]
        sus = np.flatnonzero(ctx.health_state == d.susceptible_index)
        if sus.size == 0:
            return
        draws = ctx.rng_factory.uniforms_for(
            RngFactory.SCENARIO, ctx.day, sus, salt=self._SALT_SELECT
        )
        chosen = sus[draws < self.coverage]
        dwell = d.states[v].dwell
        for p in chosen:
            p = int(p)
            gen = ctx.rng_factory.stream(
                RngFactory.SCENARIO, ctx.day, p, self._SALT_DWELL
            )
            ctx.days_remaining[p] = int(dwell.sample(gen, 1)[0])
        ctx.health_state[chosen] = v
        ctx.treatment[chosen] = VACCINATED

    def extra_transitions(self, disease) -> list[tuple[str, str]]:
        sus = disease.states[disease.susceptible_index].name
        return [(sus, self.vaccine_state)]


class TestTraceQuarantine(ModelComponent):
    """Symptomatic testing, delayed reporting, household quarantine.

    Each day, unreported symptomatic persons test positive with
    probability ``detection``; the report lands ``report_delay`` days
    later, at which point the case is quarantined for
    ``quarantine_days`` and each household member complies with
    probability ``compliance``.  Quarantined persons skip all non-home
    visits.

    The roster lives centrally (built in ``update_treatments`` on the
    driver); because the *visit filter* needs it on every PE, the
    component sets ``has_wire_state`` and ships active
    ``(person, until)`` pairs with the SMP day kick — forked workers
    filter from the broadcast pairs, the other backends read the
    central arrays directly, and both paths produce the same mask.

    >>> c = TestTraceQuarantine(detection=0.5)
    >>> c.has_wire_state
    True
    >>> c.load_wire_state(b"")   # a day with an empty roster
    >>> c._wire_pairs.shape
    (0, 2)
    """

    __test__ = False  # class name pattern-matches pytest collection
    has_wire_state = True
    _SALT_DETECT = 2
    _SALT_COMPLY = 3

    def __init__(
        self,
        detection: float = 0.5,
        report_delay: int = 2,
        quarantine_days: int = 7,
        compliance: float = 0.8,
    ):
        for name, p in (("detection", detection), ("compliance", compliance)):
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be in [0, 1]")
        if report_delay < 0 or quarantine_days < 1:
            raise ValueError("need report_delay >= 0 and quarantine_days >= 1")
        self.detection = detection
        self.report_delay = report_delay
        self.quarantine_days = quarantine_days
        self.compliance = compliance
        self.reset()

    def reset(self) -> None:
        super().reset()
        self._reported: np.ndarray | None = None
        self._quarantined_until: np.ndarray | None = None
        self._pending: list[tuple[int, int]] = []
        self._wire_pairs: np.ndarray | None = None

    def _ensure(self, n_persons: int) -> None:
        if self._reported is None:
            self._reported = np.zeros(n_persons, dtype=bool)
            self._quarantined_until = np.full(n_persons, -1, dtype=np.int64)

    def update_treatments(self, ctx: DayContext) -> None:
        g = ctx.graph
        self._ensure(g.n_persons)
        # 1. testing: unreported symptomatic persons test positive.
        sympt = np.flatnonzero(
            ctx.disease.symptomatic[ctx.health_state] & ~self._reported
        )
        if sympt.size:
            draws = ctx.rng_factory.uniforms_for(
                RngFactory.SCENARIO, ctx.day, sympt, salt=self._SALT_DETECT
            )
            detected = sympt[draws < self.detection]
            self._reported[detected] = True
            for p in detected.tolist():
                self._pending.append((ctx.day + self.report_delay, p))
        # 2. reports that came due today: quarantine case + household.
        due = sorted(p for (d, p) in self._pending if d <= ctx.day)
        self._pending = [(d, p) for (d, p) in self._pending if d > ctx.day]
        if not due:
            return
        cases = np.asarray(due, dtype=np.int64)
        until = ctx.day + self.quarantine_days
        contacts = np.flatnonzero(np.isin(g.person_home, g.person_home[cases]))
        draws = ctx.rng_factory.uniforms_for(
            RngFactory.SCENARIO, ctx.day, contacts, salt=self._SALT_COMPLY
        )
        comply = contacts[draws < self.compliance]
        self._quarantined_until[comply] = np.maximum(
            self._quarantined_until[comply], until
        )
        # Index cases isolate regardless of household compliance.
        self._quarantined_until[cases] = np.maximum(
            self._quarantined_until[cases], until
        )

    def filter_visits(
        self, ctx: DayContext, keep: np.ndarray, rows: np.ndarray | None = None
    ) -> None:
        g = ctx.graph
        quarantined = np.zeros(g.n_persons, dtype=bool)
        if self._wire_pairs is not None:
            pairs = self._wire_pairs
            quarantined[pairs[pairs[:, 1] > ctx.day, 0]] = True
        elif self._quarantined_until is not None:
            quarantined = self._quarantined_until > ctx.day
        if not quarantined.any():
            return
        persons = g.visit_person if rows is None else g.visit_person[rows]
        locations = g.visit_location if rows is None else g.visit_location[rows]
        non_home = locations != g.person_home[persons]
        keep[quarantined[persons] & non_home] = False

    # -- state declarations --------------------------------------------
    def wire_state(self) -> bytes:
        if self._quarantined_until is None:
            return b""
        active = np.flatnonzero(self._quarantined_until >= 0)
        pairs = np.stack(
            [active, self._quarantined_until[active]], axis=1
        ).astype(np.int64)
        return pairs.tobytes()

    def load_wire_state(self, blob: bytes) -> None:
        self._wire_pairs = np.frombuffer(blob, dtype=np.int64).reshape(-1, 2)

    def checkpoint_state(self) -> dict:
        state = super().checkpoint_state()
        state["pending"] = np.asarray(
            self._pending or np.empty((0, 2)), dtype=np.int64
        ).reshape(-1, 2)
        if self._reported is not None:
            state["reported"] = self._reported.copy()
            state["quarantined_until"] = self._quarantined_until.copy()
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        if "pending" in state:
            self._pending = [
                (int(d), int(p))
                for d, p in np.asarray(state["pending"]).reshape(-1, 2)
            ]
        if "reported" in state:
            self._reported = np.asarray(state["reported"], dtype=bool).copy()
            self._quarantined_until = np.asarray(
                state["quarantined_until"], dtype=np.int64
            ).copy()


class HospitalCapacity(ModelComponent):
    """Finite hospital ward; excess patients land in the overflow ward.

    After each day's transitions, if more than ``beds`` persons occupy
    ``hospital_state``, the excess (deterministically, the highest
    person ids — no draws needed) moves to ``overflow_state`` keeping
    its dwell timer; the overflow state's transition set carries the
    higher mortality (:func:`repro.scenarios.models.hospital_model`).

    >>> HospitalCapacity(beds=5).beds
    5
    """

    def __init__(
        self, beds: int, hospital_state: str = "H", overflow_state: str = "H_over"
    ):
        if beds < 0:
            raise ValueError("beds must be non-negative")
        self.beds = beds
        self.hospital_state = hospital_state
        self.overflow_state = overflow_state

    def post_apply(self, ctx: DayContext) -> None:
        d = ctx.disease
        in_ward = np.flatnonzero(
            ctx.health_state == d.index[self.hospital_state]
        )
        if in_ward.size <= self.beds:
            return
        overflow = in_ward[self.beds:]
        ctx.health_state[overflow] = d.index[self.overflow_state]

    def extra_transitions(self, disease) -> list[tuple[str, str]]:
        # Direct move, plus the compound hop a same-day I -> H -> H_over
        # sequence shows the invariant checker.
        edges = [(self.hospital_state, self.overflow_state)]
        for pred in _predecessors(disease, self.hospital_state):
            edges.append((pred, self.overflow_state))
        return edges


class DemographicTurnover(ModelComponent):
    """Births and deaths at the population boundary.

    Persons in a terminal state (absorbing, neither infectious nor
    susceptible — recovered or dead) are replaced by a fresh
    susceptible with probability ``rate`` per day: same person id, new
    life.  This keeps the population size constant while reopening the
    susceptible pool, so epidemics can re-ignite — the component
    declares ``reinfection_possible`` so the conservation invariant
    relaxes to ``cumulative >= unique``.

    >>> DemographicTurnover(rate=0.1).reinfection_possible(None)
    True
    """

    _SALT = 4

    def __init__(self, rate: float = 0.05):
        if not (0.0 <= rate <= 1.0):
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate

    @staticmethod
    def _terminal(disease: DiseaseModel) -> np.ndarray:
        return np.array(
            [
                s.dwell.kind.name == "FOREVER"
                and not s.is_infectious
                and not s.is_susceptible
                for s in disease.states
            ]
        )

    def post_apply(self, ctx: DayContext) -> None:
        d = ctx.disease
        gone = np.flatnonzero(self._terminal(d)[ctx.health_state])
        if gone.size == 0:
            return
        draws = ctx.rng_factory.uniforms_for(
            RngFactory.SCENARIO, ctx.day, gone, salt=self._SALT
        )
        reborn = gone[draws < self.rate]
        if reborn.size == 0:
            return
        ctx.health_state[reborn] = d.susceptible_index
        ctx.days_remaining[reborn] = FOREVER
        ctx.treatment[reborn] = UNTREATED

    def reinfection_possible(self, disease) -> bool:
        return True

    def extra_transitions(self, disease) -> list[tuple[str, str]]:
        sus = disease.states[disease.susceptible_index].name
        terminal = [
            s.name for s, t in zip(disease.states, self._terminal(disease)) if t
        ]
        edges = [(t, sus) for t in terminal]
        for t in terminal:
            for pred in _predecessors(disease, t):
                edges.append((pred, sus))
        return edges


class VariantAssignment(ModelComponent):
    """Route neutral infections to a variant lane, frequency-dependent.

    :func:`repro.scenarios.models.two_variant_model` enters every new
    infection in the neutral ``E_pick`` state; this component, running
    *before* the day's PTTS transitions, reassigns those persons to the
    A or B exposed lane (keeping their latency timer) with probability
    proportional to each variant's current shedder count — ``bias``
    breaks the tie when neither circulates yet.  Running in
    ``update_treatments`` guarantees the placeholder ``E_pick``
    transition can never fire: the timer is >= 1 at infection and the
    reassignment lands before the next decrement.

    >>> VariantAssignment(bias=0.5).bias
    0.5
    """

    _SALT = 5

    def __init__(self, bias: float = 0.5):
        if not (0.0 <= bias <= 1.0):
            raise ValueError("bias must be in [0, 1]")
        self.bias = bias

    def update_treatments(self, ctx: DayContext) -> None:
        d = ctx.disease
        undecided = np.flatnonzero(ctx.health_state == d.index["E_pick"])
        if undecided.size == 0:
            return
        shedders_a = [d.index["I_A"], d.index["I_A2"]]
        shedders_b = [d.index["I_B"], d.index["I_B2"]]
        n_a = int(np.isin(ctx.health_state, shedders_a).sum())
        n_b = int(np.isin(ctx.health_state, shedders_b).sum())
        p_a = self.bias if (n_a + n_b) == 0 else n_a / (n_a + n_b)
        draws = ctx.rng_factory.uniforms_for(
            RngFactory.SCENARIO, ctx.day, undecided, salt=self._SALT
        )
        to_a = draws < p_a
        ctx.health_state[undecided[to_a]] = d.index["E_A"]
        ctx.health_state[undecided[~to_a]] = d.index["E_B"]

    def reinfection_possible(self, disease) -> bool:
        return bool(disease.infection_entry_by_state)

    def extra_transitions(self, disease) -> list[tuple[str, str]]:
        edges = [("E_pick", "E_A"), ("E_pick", "E_B")]
        # Compound reinfection hop: I_A -> R_A (declared) and
        # R_A -> E_B2 (entry) can land within one day.
        for src, dst in disease.infection_entry_by_state.items():
            for pred in _predecessors(disease, src):
                edges.append((pred, dst))
        return edges
