"""PTTS templates for the composable scenario library.

Each template extends the basic S/E/I/R chain of
:func:`repro.core.disease.sir_model` with the extra states one of the
:mod:`repro.scenarios.components` needs: a waning-vaccine state, a
hospital/overflow pair with distinct mortality branches, or two
co-circulating variant lanes with cross-immunity.  All of them compile
through the unchanged :class:`~repro.core.disease.DiseaseModel`, so
every exposure kernel and every execution backend runs them as-is —
scenario structure lives in the *state graph*, not in backend code.
"""

from __future__ import annotations

from repro.core.disease import (
    UNTREATED,
    DiseaseModel,
    DwellDistribution,
    HealthState,
    Transition,
)

__all__ = ["waning_model", "hospital_model", "two_variant_model"]


def waning_model(
    efficacy: float = 0.6,
    wane_lo: int = 4,
    wane_hi: int = 8,
    latent_days: int = 2,
) -> DiseaseModel:
    """S/V/E/I/R chain with a waning vaccine state.

    ``V`` is partially immune (susceptibility ``1 - efficacy``) and
    *finite*: after a uniform ``[wane_lo, wane_hi]``-day dwell the
    person transitions back to ``S``.  The
    :class:`~repro.scenarios.components.WaningVaccination` component
    moves covered persons into ``V``; infection of a ``V`` person uses
    the normal entry state.

    >>> m = waning_model(efficacy=0.5)
    >>> [s.name for s in m.states]
    ['S', 'V', 'E', 'I', 'R']
    >>> m.states[m.index['V']].susceptibility
    0.5
    """
    if not (0.0 <= efficacy <= 1.0):
        raise ValueError("efficacy must be in [0, 1]")
    states = [
        HealthState("S", susceptibility=1.0),
        HealthState(
            "V",
            susceptibility=1.0 - efficacy,
            dwell=DwellDistribution.uniform(wane_lo, wane_hi),
            transitions={UNTREATED: (Transition("S", 1.0),)},
        ),
        HealthState(
            "E",
            dwell=DwellDistribution.fixed(latent_days),
            transitions={UNTREATED: (Transition("I", 1.0),)},
        ),
        HealthState(
            "I",
            infectivity=1.0,
            symptomatic=True,
            dwell=DwellDistribution.uniform(3, 5),
            transitions={UNTREATED: (Transition("R", 1.0),)},
        ),
        HealthState("R"),
    ]
    return DiseaseModel(states, susceptible="S", infection_entry={UNTREATED: "E"})


def hospital_model(
    hospitalization: float = 0.3,
    mortality: float = 0.1,
    overflow_mortality: float = 0.4,
) -> DiseaseModel:
    """SEIR with a hospital branch and an overflow ward.

    A fraction of infectious persons is hospitalised; the ``H_over``
    state is never entered by the PTTS itself — the
    :class:`~repro.scenarios.components.HospitalCapacity` component
    moves persons there when the ward exceeds its bed count, which
    raises their mortality branch probability.

    >>> m = hospital_model(mortality=0.1, overflow_mortality=0.4)
    >>> sorted(m.index)
    ['D', 'E', 'H', 'H_over', 'I', 'R', 'S']
    """
    for name, p in (
        ("hospitalization", hospitalization),
        ("mortality", mortality),
        ("overflow_mortality", overflow_mortality),
    ):
        if not (0.0 <= p <= 1.0):
            raise ValueError(f"{name} must be in [0, 1]")
    ward_dwell = DwellDistribution.uniform(4, 8)
    states = [
        HealthState("S", susceptibility=1.0),
        HealthState(
            "E",
            dwell=DwellDistribution.fixed(2),
            transitions={UNTREATED: (Transition("I", 1.0),)},
        ),
        HealthState(
            "I",
            infectivity=1.0,
            symptomatic=True,
            dwell=DwellDistribution.uniform(3, 5),
            transitions={
                UNTREATED: (
                    Transition("H", hospitalization),
                    Transition("R", 1.0 - hospitalization),
                )
            },
        ),
        HealthState(
            "H",
            symptomatic=True,
            dwell=ward_dwell,
            transitions={
                UNTREATED: (
                    Transition("D", mortality),
                    Transition("R", 1.0 - mortality),
                )
            },
        ),
        HealthState(
            "H_over",
            symptomatic=True,
            dwell=ward_dwell,
            transitions={
                UNTREATED: (
                    Transition("D", overflow_mortality),
                    Transition("R", 1.0 - overflow_mortality),
                )
            },
        ),
        HealthState("R"),
        HealthState("D"),
    ]
    return DiseaseModel(states, susceptible="S", infection_entry={UNTREATED: "E"})


def two_variant_model(
    cross_immunity: float = 0.7,
    variant_b_infectivity: float = 1.3,
) -> DiseaseModel:
    """Two co-circulating variants with partial cross-immunity.

    Infection enters a neutral ``E_pick`` state; the
    :class:`~repro.scenarios.components.VariantAssignment` component
    routes it to the A or B lane before its latency can elapse (the
    declared ``E_pick -> I_A`` transition is a placeholder that never
    fires).  Recovered-from-one-variant persons keep susceptibility
    ``1 - cross_immunity`` and reinfect *into the other lane* via
    ``infection_entry_by_state`` — compiled into the same flat arrays
    every kernel and backend consumes.

    >>> m = two_variant_model(cross_immunity=0.5)
    >>> m.infection_entry_by_state
    {'R_A': 'E_B2', 'R_B': 'E_A2'}
    >>> m.states[m.index['R_A']].susceptibility
    0.5
    """
    if not (0.0 <= cross_immunity < 1.0):
        raise ValueError("cross_immunity must be in [0, 1) — at 1.0 the "
                         "recovered states stop being reinfectable")
    if variant_b_infectivity <= 0.0:
        raise ValueError("variant_b_infectivity must be positive")
    latent = DwellDistribution.uniform(1, 3)
    infectious = DwellDistribution.uniform(3, 6)
    leftover = 1.0 - cross_immunity

    def lane(entry: str, shedder: str, sink: str, infectivity: float):
        return [
            HealthState(
                entry,
                dwell=latent,
                transitions={UNTREATED: (Transition(shedder, 1.0),)},
            ),
            HealthState(
                shedder,
                infectivity=infectivity,
                symptomatic=True,
                dwell=infectious,
                transitions={UNTREATED: (Transition(sink, 1.0),)},
            ),
        ]

    states = [
        HealthState("S", susceptibility=1.0),
        # Placeholder target keeps the PTTS valid; VariantAssignment
        # re-routes E_pick persons before the dwell can elapse.
        HealthState(
            "E_pick",
            dwell=latent,
            transitions={UNTREATED: (Transition("I_A", 1.0),)},
        ),
        *lane("E_A", "I_A", "R_A", 1.0),
        *lane("E_B", "I_B", "R_B", variant_b_infectivity),
        HealthState("R_A", susceptibility=leftover),
        HealthState("R_B", susceptibility=leftover),
        # Second-infection lanes end in the fully immune R_AB.
        *lane("E_A2", "I_A2", "R_AB", 1.0),
        *lane("E_B2", "I_B2", "R_AB", variant_b_infectivity),
        HealthState("R_AB"),
    ]
    return DiseaseModel(
        states,
        susceptible="S",
        infection_entry={UNTREATED: "E_pick"},
        infection_entry_by_state={"R_A": "E_B2", "R_B": "E_A2"},
    )
