"""ScenarioSpec: the canonical, hashable form of a scenario choice.

A :class:`ScenarioSpec` is the serialisable counterpart of a registry
entry plus parameter overrides — the piece :class:`repro.spec.RunSpec`
embeds (its ``scenario`` / ``scenario_params`` fields) and the lab
cache hashes.  Like every spec in :mod:`repro.spec`, it round-trips
through JSON and TOML and has a stable BLAKE2b content hash over the
canonical (pruned, sorted) form, so a scenario swept as a grid axis
keys cache entries exactly like any other knob.

>>> s = ScenarioSpec("turnover", {"rate": 0.2})
>>> ScenarioSpec.from_json(s.to_json()) == s
True
>>> s.content_hash() == ScenarioSpec.from_toml(s.to_toml()).content_hash()
True
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.scenarios import registry
from repro.spec import _toml_dumps, canonical_json, content_hash

__all__ = ["ScenarioSpec"]


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario name plus parameter overrides.

    Validation happens at construction: the name must be registered and
    every override must be a parameter the definition declares, so an
    invalid spec never reaches a worker process.

    >>> ScenarioSpec("turnover").canonical()
    {'name': 'turnover'}
    >>> ScenarioSpec("turnover", {"no_such_knob": 1})
    Traceback (most recent call last):
    ...
    ValueError: scenario 'turnover' has no parameter(s) ['no_such_knob'] (accepted: ['rate'])
    """

    name: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        registry.get(self.name).params(**self.params)

    def canonical(self) -> dict:
        """Pruned form: default (empty) params hash like absent params.

        >>> a = ScenarioSpec("turnover", {})
        >>> b = ScenarioSpec("turnover")
        >>> a.content_hash() == b.content_hash()
        True
        """
        d = {"name": self.name}
        if self.params:
            d["params"] = dict(self.params)
        return d

    def content_hash(self) -> str:
        """BLAKE2b over :func:`repro.spec.canonical_json` of
        :meth:`canonical`.

        >>> len(ScenarioSpec("turnover").content_hash())
        32
        """
        return content_hash(self.canonical())

    def to_json(self, indent: int | None = None) -> str:
        """Serialise; inverse of :meth:`from_json`.

        >>> ScenarioSpec("turnover").to_json()
        '{"name": "turnover"}'
        """
        return json.dumps(self.canonical(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioSpec":
        """Build from a canonical dict.

        >>> ScenarioSpec.from_dict({"name": "turnover"}).name
        'turnover'
        """
        return cls(name=d["name"], params=dict(d.get("params") or {}))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Inverse of :meth:`to_json`.

        >>> ScenarioSpec.from_json('{"name": "turnover"}').params
        {}
        """
        return cls.from_dict(json.loads(text))

    def to_toml(self) -> str:
        """TOML form (round-trips through ``tomllib``).

        >>> print(ScenarioSpec("turnover").to_toml())
        name = "turnover"
        """
        return _toml_dumps(self.canonical())

    @classmethod
    def from_toml(cls, text: str) -> "ScenarioSpec":
        """Inverse of :meth:`to_toml`.

        >>> ScenarioSpec.from_toml('name = "turnover"').name
        'turnover'
        """
        import tomllib

        return cls.from_dict(tomllib.loads(text))

    def canonical_json(self) -> str:
        """The exact byte string :meth:`content_hash` digests.

        >>> ScenarioSpec("turnover").canonical_json()
        '{"name":"turnover"}'
        """
        return canonical_json(self.canonical())

    def build(self, graph, **kwargs):
        """Materialise via :func:`repro.scenarios.registry.build_scenario`.

        >>> from repro.spec import PopulationSpec
        >>> g = PopulationSpec(n_persons=50, name="doc").build()
        >>> ScenarioSpec("turnover").build(g, n_days=2).n_days
        2
        """
        return registry.build_scenario(
            self.name, graph, params=self.params, **kwargs
        )
