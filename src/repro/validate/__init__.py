"""Differential-correctness tooling for the sequential↔parallel guarantee.

The reproduction's load-bearing claim — keyed RNG makes the
chare-parallel runtime bit-identical to the sequential reference under
any data distribution, detector or delivery mode — is machine-checked
here:

* :mod:`repro.validate.strategies` — hypothesis strategies generating
  small-but-adversarial populations and scenarios, shared by all test
  tiers;
* :mod:`repro.validate.oracle` — the differential oracle running one
  scenario through both execution modes across the
  {RR, GP, GP-splitLoc} × {cd, qd} × {direct, aggregated, tram} matrix
  and diffing epi-curves, infection events and final state;
* :mod:`repro.validate.external` — the distribution-level oracle
  comparing seeded ensembles of the sequential reference against the
  independent FastSIR/Dijkstra baselines (``validate --external``),
  the one check that can catch a bug in the reference itself;
* :mod:`repro.validate.invariants` — online invariant checks threaded
  through the parallel runtime (``validate=True``);
* :mod:`repro.validate.golden` — golden-trace capture/replay pinning
  epi-curves and virtual-time phase profiles of reference scenarios.

``python -m repro validate`` drives the oracle from the shell;
``python -m repro validate --refresh-golden`` re-records the traces.

Submodules import lazily so that enabling runtime checks (which only
needs :mod:`invariants`) never drags in hypothesis or the oracle's
partitioning stack.
"""

from repro.validate.invariants import InvariantChecker, InvariantViolation

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "run_matrix",
    "run_smp_matrix",
    "run_external_oracle",
    "OracleReport",
    "SmpOracleReport",
    "ExternalOracleReport",
]


def __getattr__(name):
    if name in (
        "run_matrix",
        "OracleReport",
        "Divergence",
        "CellResult",
        "run_smp_matrix",
        "SmpOracleReport",
        "SmpCellResult",
    ):
        from repro.validate import oracle

        return getattr(oracle, name)
    if name in (
        "run_external_oracle",
        "ExternalOracleReport",
        "ExternalCellResult",
        "MUTATIONS",
        "EXTERNAL_PRESETS",
    ):
        from repro.validate import external

        return getattr(external, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
