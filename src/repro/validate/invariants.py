"""Runtime invariant checks for the parallel execution.

The sequential↔parallel equivalence guarantee rests on a handful of
structural invariants that every data distribution, detector and
delivery mode must preserve.  :class:`InvariantChecker` turns them into
online assertions threaded through :class:`~repro.core.parallel.
ParallelEpiSimdemics` (enable with ``validate=True``):

* **partition conservation** — every person/visit row is owned by
  exactly one PersonManager and every location by exactly one
  LocationManager;
* **exactly-once visit delivery** — the multiset of visit rows the PMs
  push into the aggregation channel equals the multiset the LMs take
  out, and each row arrives at the LM that owns its location;
* **detector-closure soundness** — no visit (infect) message is
  delivered after the visit (infect) phase's detector declared
  completion;
* **unique RNG keys** — no two infection events of one day share a
  ``(day, location, person)`` transmission key (a duplicate means two
  LMs computed the same draw — the classic split-brain bug);
* **legal PTTS steps** — between day boundaries every person moves at
  most one hop along the disease model's transition graph (dwell
  expiry or infection entry), never teleporting or resurrecting;
* **infection conservation** — the epi-curve's cumulative count equals
  the number of ever-infected persons.

A failed check raises :class:`InvariantViolation` immediately with the
offending day/location/person; passed checks are counted in
``checks_passed`` so tests can assert coverage.  The checker also logs
every infection event per day, which is what the differential oracle
(:mod:`repro.validate.oracle`) diffs against the sequential reference.

:class:`~repro.charm.scheduler.RuntimeSimulator` accepts its own
``validate=`` flag for the runtime-level invariants (drained
aggregation buffers at exit, sane detector counters) — see
``RuntimeSimulator.run`` and :mod:`repro.charm.completion`.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

__all__ = ["InvariantViolation", "InvariantChecker"]


class InvariantViolation(AssertionError):
    """A runtime invariant of the parallel execution was broken.

    Subclasses ``AssertionError`` so plain test harnesses catch it too:

    >>> try:
    ...     raise InvariantViolation("day 2: person 3 delivered twice")
    ... except AssertionError as e:
    ...     print(e)
    day 2: person 3 delivered twice
    """


class InvariantChecker:
    """Online invariant checks for one :class:`ParallelEpiSimdemics` run.

    Parameters
    ----------
    graph:
        The scenario's :class:`~repro.synthpop.graph.PersonLocationGraph`.
    disease:
        The scenario's compiled PTTS model.
    distribution:
        The object→chare :class:`~repro.core.parallel.Distribution`.
    extra_transitions:
        Additional ``(src, dst)`` state-name pairs a scenario component
        may move persons along outside the declared PTTS transitions
        (e.g. a vaccination campaign's ``S -> V`` edit, hospital
        overflow) — see
        :meth:`repro.core.interventions.Intervention.extra_transitions`.
    reinfection_ok:
        When True, components can return persons to a susceptible
        state, so the conservation check relaxes to "cumulative
        infections >= unique ever-infected persons".

    Attach one by passing ``validate=True`` to
    :class:`~repro.core.parallel.ParallelEpiSimdemics`; every check it
    performs during the run increments :attr:`checks_passed` and any
    broken invariant raises :class:`InvariantViolation` immediately:

    >>> from repro.charm.machine import Machine, MachineConfig
    >>> from repro.core import Scenario, TransmissionModel
    >>> from repro.core.parallel import Distribution, ParallelEpiSimdemics
    >>> from repro.partition import round_robin_partition
    >>> from repro.synthpop import PopulationConfig, generate_population
    >>> g = generate_population(PopulationConfig(n_persons=60), 0)
    >>> mc = MachineConfig(n_nodes=1, cores_per_node=4, smp=False)
    >>> m = Machine(mc)
    >>> dist = Distribution.from_partition(round_robin_partition(g, m.n_pes), m)
    >>> sc = Scenario(graph=g, n_days=2, seed=0, initial_infections=3,
    ...               transmission=TransmissionModel(2e-4))
    >>> sim = ParallelEpiSimdemics(sc, mc, dist, validate=True)
    >>> _ = sim.run()
    >>> sim.checker.checks_passed > 0
    True
    """

    def __init__(
        self,
        graph,
        disease,
        distribution,
        extra_transitions: tuple = (),
        reinfection_ok: bool = False,
    ):
        self.graph = graph
        self.disease = disease
        self.distribution = distribution
        self.reinfection_ok = bool(reinfection_ok)
        self.checks_passed = 0
        #: per-day infection events (the oracle's parallel-side record)
        self.infection_log: dict[int, list] = {}
        self._day = -1
        self._state0: np.ndarray | None = None
        self._visit_phase_open = False
        self._infect_phase_open = False
        self._visits_sent: Counter = Counter()
        self._visits_recv: Counter = Counter()
        self._infects_sent = 0
        self._infects_recv = 0
        self._rng_keys_used: set[tuple[int, int, int]] = set()
        self._allowed = self._allowed_transitions(disease, extra_transitions)

    # ------------------------------------------------------------------
    @staticmethod
    def _allowed_transitions(disease, extra_transitions: tuple = ()) -> np.ndarray:
        """Boolean matrix: ``allowed[s0, s1]`` iff a person may move from
        state ``s0`` to ``s1`` within one simulated day."""
        n = disease.n_states
        allowed = np.eye(n, dtype=bool)
        for i, s in enumerate(disease.states):
            for transitions in s.transitions.values():
                for tr in transitions:
                    allowed[i, disease.index[tr.target]] = True
        # Infection: every susceptible state -> its entry state(s) —
        # per-state overrides first, else every treatment's entry.
        by_state = getattr(disease, "infection_entry_by_state", {})
        for i, s in enumerate(disease.states):
            if not s.is_susceptible:
                continue
            if s.name in by_state:
                allowed[i, disease.index[by_state[s.name]]] = True
            else:
                for t in disease.treatments:
                    allowed[i, disease.entry_state(t)] = True
        for src, dst in extra_transitions:
            allowed[disease.index[src], disease.index[dst]] = True
        return allowed

    def _fail(self, message: str) -> None:
        raise InvariantViolation(message)

    def _ok(self) -> None:
        self.checks_passed += 1

    # ------------------------------------------------------------------
    # structural checks (run once, at simulation construction)
    # ------------------------------------------------------------------
    def check_partition(self, pm_persons, pm_rows, lm_locations) -> None:
        """Persons, visit rows and locations each partition exactly."""
        g = self.graph
        owners = np.zeros(g.n_persons, dtype=np.int64)
        for persons in pm_persons:
            owners[persons] += 1
        if not np.all(owners == 1):
            p = int(np.flatnonzero(owners != 1)[0])
            self._fail(
                f"person conservation broken: person {p} is owned by "
                f"{int(owners[p])} PersonManagers (expected exactly 1)"
            )
        self._ok()
        row_owners = np.zeros(g.n_visits, dtype=np.int64)
        for rows in pm_rows:
            row_owners[rows] += 1
        if not np.all(row_owners == 1):
            r = int(np.flatnonzero(row_owners != 1)[0])
            self._fail(
                f"visit-row conservation broken: row {r} is owned by "
                f"{int(row_owners[r])} PersonManagers (expected exactly 1)"
            )
        self._ok()
        loc_owners = np.zeros(g.n_locations, dtype=np.int64)
        for locs in lm_locations:
            loc_owners[locs] += 1
        if not np.all(loc_owners == 1):
            loc = int(np.flatnonzero(loc_owners != 1)[0])
            self._fail(
                f"location conservation broken: location {loc} is owned by "
                f"{int(loc_owners[loc])} LocationManagers (expected exactly 1)"
            )
        self._ok()

    # ------------------------------------------------------------------
    # day lifecycle
    # ------------------------------------------------------------------
    def begin_day(self, day: int, health_state: np.ndarray) -> None:
        """Snapshot start-of-day state (call after seeding, before phases)."""
        self._day = day
        self._state0 = health_state.copy()
        self._visit_phase_open = True
        self._infect_phase_open = True
        self._visits_sent.clear()
        self._visits_recv.clear()
        self._infects_sent = 0
        self._infects_recv = 0
        self.infection_log[day] = []

    # -- visit phase -----------------------------------------------------
    def record_visits_sent(self, rows: np.ndarray) -> None:
        self._visits_sent.update(int(r) for r in np.asarray(rows).ravel())

    def record_visit_received(self, row: int, lm_index: int) -> None:
        if not self._visit_phase_open:
            self._fail(
                f"detector-closure soundness broken: visit row {row} was "
                f"delivered after the day-{self._day} visit phase closed"
            )
        owner = int(self.distribution.location_chare[self.graph.visit_location[row]])
        if owner != lm_index:
            self._fail(
                f"misrouted visit: row {row} (location "
                f"{int(self.graph.visit_location[row])}) arrived at LM {lm_index} "
                f"but LM {owner} owns that location"
            )
        self._visits_recv[int(row)] += 1

    def close_visit_phase(self, channel=None) -> None:
        """The visit detector completed: delivery must be exactly-once."""
        self._visit_phase_open = False
        if self._visits_sent != self._visits_recv:
            lost = self._visits_sent - self._visits_recv
            extra = self._visits_recv - self._visits_sent
            if lost:
                row, n = next(iter(sorted(lost.items())))
                self._fail(
                    f"visit delivery broken on day {self._day}: row {row} was "
                    f"sent but {n} cop{'y' if n == 1 else 'ies'} never arrived"
                )
            row, n = next(iter(sorted(extra.items())))
            self._fail(
                f"visit delivery broken on day {self._day}: row {row} was "
                f"delivered {n} more time(s) than it was sent"
            )
        self._ok()
        if channel is not None and self._channel_pending(channel):
            self._fail(
                f"aggregation channel {channel.name!r} still buffers records "
                f"after the day-{self._day} visit phase closed"
            )
        self._ok()

    @staticmethod
    def _channel_pending(channel) -> bool:
        pending = getattr(channel, "pending_sources", None) or getattr(
            channel, "pending_pes", None
        )
        return bool(pending())

    # -- location / infect phase ----------------------------------------
    def record_infections(self, day: int, events) -> None:
        """Log a LocationManager's infect messages; keys must be unique."""
        for ev in events:
            key = (day, ev.location, ev.person)
            if key in self._rng_keys_used:
                self._fail(
                    f"duplicate transmission RNG key {key}: two infection "
                    f"events share (day={day}, location={ev.location}, "
                    f"person={ev.person}) — the same keyed draw was taken twice"
                )
            self._rng_keys_used.add(key)
            self._infects_sent += 1
        self._ok()
        self.infection_log.setdefault(day, []).extend(events)

    def record_infect_received(self, person: int) -> None:
        if not self._infect_phase_open:
            self._fail(
                f"detector-closure soundness broken: an infect message for "
                f"person {person} arrived after the day-{self._day} infect "
                f"phase closed"
            )
        self._infects_recv += 1

    def close_infect_phase(self) -> None:
        self._infect_phase_open = False
        if self._infects_sent != self._infects_recv:
            self._fail(
                f"infect delivery broken on day {self._day}: "
                f"{self._infects_sent} infect messages sent, "
                f"{self._infects_recv} received"
            )
        self._ok()

    # -- day end ----------------------------------------------------------
    def end_day(
        self,
        day: int,
        health_state: np.ndarray,
        ever_infected: np.ndarray,
        curve,
    ) -> None:
        """Check PTTS legality and infection conservation at the day boundary."""
        if self._visit_phase_open or self._infect_phase_open:
            self._fail(
                f"day {day} ended with an open "
                f"{'visit' if self._visit_phase_open else 'infect'} phase"
            )
        self._ok()
        legal = self._allowed[self._state0, health_state]
        if not np.all(legal):
            p = int(np.flatnonzero(~legal)[0])
            s0 = self.disease.states[int(self._state0[p])].name
            s1 = self.disease.states[int(health_state[p])].name
            self._fail(
                f"illegal PTTS step on day {day}: person {p} moved "
                f"{s0!r} -> {s1!r}, which is not one dwell transition or an "
                f"infection entry"
            )
        self._ok()
        cum = curve.cumulative_infections[-1] if curve.cumulative_infections else 0
        unique = int(ever_infected.sum())
        # With reinfection (waned immunity, demographic turnover) one
        # person can be infected several times, so the cumulative count
        # may exceed — but never undershoot — the unique-person count.
        broken = cum < unique if self.reinfection_ok else cum != unique
        if broken:
            self._fail(
                f"infection conservation broken on day {day}: the epi-curve "
                f"counts {cum} cumulative infections but {unique} "
                f"persons were ever infected"
            )
        self._ok()
