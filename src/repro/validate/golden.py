"""Golden-trace capture and replay.

A golden trace pins a named parallel configuration end to end: the
epidemic curve, the final PTTS state histogram, the per-day phase
timings and the total virtual time, snapshotted to
``tests/golden/<name>.json``.  ``tests/validate/test_golden.py``
re-runs each case and compares — epidemic integers must match exactly
(the reproducibility guarantee), virtual-time floats to a relative
tolerance of 1e-9 (they are deterministic too, but serialise through
decimal text).

When an *intentional* change shifts a trace (e.g. a cost-model
recalibration moves the timings), refresh with::

    PYTHONPATH=src python -m repro validate --refresh-golden

and review the JSON diff like any other code change — that diff *is*
the behavioural change being approved.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

__all__ = ["GoldenCase", "GOLDEN_CASES", "golden_dir", "capture", "verify", "refresh_all"]

#: Relative tolerance for virtual-time floats (decimal round-trip only).
REL_TOL = 1e-9


@dataclass(frozen=True)
class GoldenCase:
    """Specification of one golden configuration."""

    name: str
    state: str
    scale: float
    pop_seed: int
    distribution: str  # "rr" | "gp"
    sync: str
    delivery: str
    n_days: int
    seed: int
    initial_infections: int
    transmissibility: float


#: The recorded configurations: scaled Wyoming (~1k persons, Table I
#: ratios), one graph-partitioned and one round-robin cell, covering
#: both CD and QD and two delivery modes.
GOLDEN_CASES = (
    GoldenCase(
        name="wy-gp-cd-aggregated",
        state="WY", scale=2e-3, pop_seed=5,
        distribution="gp", sync="cd", delivery="aggregated",
        n_days=8, seed=7, initial_infections=10, transmissibility=2.5e-4,
    ),
    GoldenCase(
        name="wy-rr-qd-tram",
        state="WY", scale=2e-3, pop_seed=5,
        distribution="rr", sync="qd", delivery="tram",
        n_days=8, seed=7, initial_infections=10, transmissibility=2.5e-4,
    ),
)


def golden_dir() -> Path:
    """``tests/golden/`` relative to the repo root."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def _run_case(case: GoldenCase):
    from repro.charm.machine import Machine
    from repro.core.parallel import Distribution, ParallelEpiSimdemics
    from repro.core.scenario import Scenario
    from repro.core.transmission import TransmissionModel
    from repro.synthpop import state_population
    from repro.validate.oracle import DEFAULT_MACHINE, _make_partition

    graph = state_population(case.state, scale=case.scale, seed=case.pop_seed)
    scenario = Scenario(
        graph=graph,
        n_days=case.n_days,
        seed=case.seed,
        initial_infections=case.initial_infections,
        transmission=TransmissionModel(case.transmissibility),
    )
    machine = Machine(DEFAULT_MACHINE)
    partition = _make_partition(graph, case.distribution, machine.n_pes)
    sim = ParallelEpiSimdemics(
        scenario,
        DEFAULT_MACHINE,
        Distribution.from_partition(partition, machine),
        sync=case.sync,
        delivery=case.delivery,
    )
    return sim.run()


def capture(case: GoldenCase) -> dict:
    """Run ``case`` and return its trace as a JSON-ready dict."""
    res = _run_case(case)
    curve = res.result.curve
    return {
        "spec": {
            "state": case.state,
            "scale": case.scale,
            "pop_seed": case.pop_seed,
            "distribution": case.distribution,
            "sync": case.sync,
            "delivery": case.delivery,
            "n_days": case.n_days,
            "seed": case.seed,
            "initial_infections": case.initial_infections,
            "transmissibility": case.transmissibility,
        },
        "curve": {
            "new_infections": curve.new_infections,
            "cumulative_infections": curve.cumulative_infections,
            "prevalence": curve.prevalence,
        },
        "final_histogram": res.result.final_histogram,
        "phase_times": [
            {
                "day": p.day,
                "person_phase": p.person_phase,
                "location_phase": p.location_phase,
                "total": p.total,
            }
            for p in res.phase_times
        ],
        "total_virtual_time": res.total_virtual_time,
    }


def _diff(recorded: dict, fresh: dict, path: str = "") -> list[str]:
    """All leaf-level differences between two traces (ints exact,
    floats to :data:`REL_TOL`)."""
    diffs: list[str] = []
    if isinstance(recorded, dict) and isinstance(fresh, dict):
        for key in sorted(set(recorded) | set(fresh)):
            here = f"{path}.{key}" if path else key
            if key not in recorded or key not in fresh:
                diffs.append(f"{here}: present on one side only")
            else:
                diffs.extend(_diff(recorded[key], fresh[key], here))
    elif isinstance(recorded, list) and isinstance(fresh, list):
        if len(recorded) != len(fresh):
            diffs.append(f"{path}: length {len(recorded)} vs {len(fresh)}")
        for i, (a, b) in enumerate(zip(recorded, fresh)):
            diffs.extend(_diff(a, b, f"{path}[{i}]"))
    elif isinstance(recorded, bool) or isinstance(fresh, bool) or (
        isinstance(recorded, int) and isinstance(fresh, int)
    ):
        if recorded != fresh:
            diffs.append(f"{path}: recorded {recorded!r}, fresh {fresh!r}")
    elif isinstance(recorded, (int, float)) and isinstance(fresh, (int, float)):
        if not math.isclose(recorded, fresh, rel_tol=REL_TOL, abs_tol=0.0):
            diffs.append(f"{path}: recorded {recorded!r}, fresh {fresh!r}")
    elif recorded != fresh:
        diffs.append(f"{path}: recorded {recorded!r}, fresh {fresh!r}")
    return diffs


def verify(case: GoldenCase, directory: Path | None = None) -> list[str]:
    """Re-run ``case`` and diff against its recorded trace.

    Returns the list of differences (empty = trace holds).  A missing
    trace file is reported as a single difference.
    """
    directory = directory or golden_dir()
    path = directory / f"{case.name}.json"
    if not path.exists():
        return [f"{path} missing — run `repro validate --refresh-golden`"]
    recorded = json.loads(path.read_text())
    return _diff(recorded, capture(case))


def refresh_all(directory: Path | None = None) -> list[Path]:
    """(Re)record every registered golden case; return written paths."""
    directory = directory or golden_dir()
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for case in GOLDEN_CASES:
        path = directory / f"{case.name}.json"
        path.write_text(json.dumps(capture(case), indent=2) + "\n")
        written.append(path)
    return written
