"""The differential oracle: sequential reference vs parallel runtime.

One scenario is run through the sequential simulator and through the
chare-parallel runtime across the full configuration matrix

    {RR, GP, GP-splitLoc} × {completion, quiescence} × {direct,
    aggregated, TRAM}

and every cell is checked for *exact* equality of

* the per-day infection events (``(person, location)`` sets, taken from
  the parallel run's :class:`~repro.validate.invariants.InvariantChecker`
  log and the sequential run's location-phase results),
* the epidemic curve (new infections, cumulative count, prevalence),
* the final state (per-person PTTS state, dwell timers and the state
  histogram).

A mismatch produces a structured :class:`Divergence` naming the first
divergent day, the offending location/person and the transmission RNG
key involved — the information needed to bisect a keyed-RNG regression.

The splitLoc distribution transforms the graph, so its cells are
compared against a sequential reference run on the *split* graph (the
split is a preprocessing step; equivalence is claimed per graph, and
``tests/partition/test_splitloc.py`` separately pins the split's own
semantics).

The matrix is also the certification harness for the exposure-kernel
rewrite: by default the sequential reference runs the ``grouped``
(reference) kernel while every parallel cell runs the ``flat`` kernel,
so one green matrix certifies old-vs-new *and* sequential-vs-parallel
at once.  :func:`run_kernel_differential` additionally compares the two
kernels head-to-head on the sequential simulator, down to the infection
minute and event order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.charm.machine import Machine, MachineConfig
from repro.core.parallel import Distribution, ParallelEpiSimdemics
from repro.core.scenario import Scenario
from repro.core.simulator import SequentialSimulator, SimulationResult
from repro.util.rng import RngFactory

__all__ = [
    "DISTRIBUTIONS",
    "SYNC_MODES",
    "DELIVERY_MODES",
    "SMP_PRESETS",
    "Divergence",
    "CellResult",
    "OracleReport",
    "KernelDiffReport",
    "SmpCellResult",
    "SmpOracleReport",
    "ScenarioCellResult",
    "ScenarioOracleReport",
    "sequential_reference",
    "run_cell",
    "run_matrix",
    "run_kernel_differential",
    "run_smp_matrix",
    "run_scenario_matrix",
]

DISTRIBUTIONS = ("rr", "gp", "gp-split")
SYNC_MODES = ("cd", "qd")
DELIVERY_MODES = ("direct", "aggregated", "tram")

#: Matrix-wide default machine: 2 SMP nodes, 8 PEs — small enough for
#: CI, large enough that every protocol (tree collectives, comm
#: threads, inter-node wires) actually runs.
DEFAULT_MACHINE = MachineConfig(n_nodes=2, cores_per_node=4, smp=True, processes_per_node=1)


@dataclass(frozen=True)
class Divergence:
    """Structured description of the first sequential↔parallel mismatch."""

    kind: str  # "events" | "curve" | "final-state"
    day: int | None = None
    location: int | None = None
    person: int | None = None
    #: derived seed of the transmission stream involved (events only)
    rng_key: int | None = None
    detail: str = ""

    def format(self) -> str:
        parts = [f"first divergence: {self.kind}"]
        if self.day is not None:
            parts.append(f"day {self.day}")
        if self.location is not None:
            parts.append(f"location {self.location}")
        if self.person is not None:
            parts.append(f"person {self.person}")
        if self.rng_key is not None:
            parts.append(f"rng key 0x{self.rng_key:016x}")
        head = ", ".join(parts)
        return f"{head}\n  {self.detail}" if self.detail else head


@dataclass
class CellResult:
    """Outcome of one matrix cell."""

    distribution: str
    sync: str
    delivery: str
    equal: bool
    checks_passed: int
    divergence: Divergence | None = None

    @property
    def label(self) -> str:
        return f"{self.distribution}×{self.sync}×{self.delivery}"


@dataclass
class OracleReport:
    """All cells of one matrix run.

    >>> r = OracleReport(cells=[], n_persons=100, n_days=8)
    >>> r.all_equal, r.total_checks
    (True, 0)
    """

    cells: list[CellResult]
    n_persons: int
    n_days: int

    @property
    def all_equal(self) -> bool:
        return all(c.equal for c in self.cells)

    @property
    def total_checks(self) -> int:
        return sum(c.checks_passed for c in self.cells)

    def format(self) -> str:
        lines = [
            f"differential oracle: {len(self.cells)} cells, "
            f"{self.n_persons} persons × {self.n_days} days"
        ]
        for c in self.cells:
            status = "exact" if c.equal else "DIVERGED"
            lines.append(f"  {c.label:<24} {status:>8}  ({c.checks_passed} invariant checks)")
            if c.divergence is not None:
                lines.append("    " + c.divergence.format().replace("\n", "\n    "))
        verdict = (
            "all cells bit-identical to the sequential reference"
            if self.all_equal
            else "EQUIVALENCE BROKEN — see divergences above"
        )
        lines.append(verdict)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# reference side
# ----------------------------------------------------------------------
def sequential_reference(
    scenario: Scenario,
    kernel: str | None = None,
) -> tuple[SimulationResult, dict[int, set], np.ndarray, np.ndarray]:
    """Run the sequential simulator, also logging per-day infection events.

    Returns ``(result, events_by_day, health_state, days_remaining)``
    where ``events_by_day[d]`` is the set of ``(person, location)``
    transmissions of day ``d``.  ``kernel`` selects the exposure kernel
    (None = the module default).
    """
    from repro.core.metrics import EpiCurve, state_histogram

    sim = SequentialSimulator(scenario, kernel=kernel)
    curve = EpiCurve()
    result = SimulationResult(curve=curve, final_histogram={})
    events: dict[int, set] = {}
    for day in range(scenario.n_days):
        day_result, phase = sim.step_day()
        events[day] = {(ev.person, ev.location) for ev in phase.infections}
        result.days.append(day_result)
        curve.record_day(day_result.new_infections, day_result.prevalence)
    result.final_histogram = state_histogram(sim.health_state, scenario.disease)
    return result, events, sim.health_state, sim.days_remaining


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def _diff_events(
    scenario: Scenario, seq_events: dict[int, set], par_events: dict[int, set]
) -> Divergence | None:
    factory = scenario.rng_factory
    for day in range(scenario.n_days):
        s, p = seq_events.get(day, set()), par_events.get(day, set())
        if s == p:
            continue
        only_seq = sorted(s - p, key=lambda e: (e[1], e[0]))
        only_par = sorted(p - s, key=lambda e: (e[1], e[0]))
        person, location = (only_seq or only_par)[0]
        side = "sequential-only" if only_seq else "parallel-only"
        return Divergence(
            kind="events",
            day=day,
            location=location,
            person=person,
            rng_key=factory.seed(RngFactory.LOCATION, day, location, person),
            detail=(
                f"{side} infection event; {len(only_seq)} event(s) missing from "
                f"the parallel run, {len(only_par)} extra"
            ),
        )
    return None


def _diff_curve(scenario: Scenario, seq_curve, par_curve) -> Divergence | None:
    for day in range(scenario.n_days):
        if day >= par_curve.n_days:
            return Divergence(
                kind="curve", day=day,
                detail=f"parallel curve ends after {par_curve.n_days} day(s)",
            )
        if seq_curve.new_infections[day] != par_curve.new_infections[day]:
            return Divergence(
                kind="curve", day=day,
                detail=(
                    f"new infections differ: sequential "
                    f"{seq_curve.new_infections[day]}, parallel "
                    f"{par_curve.new_infections[day]}"
                ),
            )
        if not np.isclose(seq_curve.prevalence[day], par_curve.prevalence[day]):
            return Divergence(
                kind="curve", day=day,
                detail=(
                    f"prevalence differs: sequential {seq_curve.prevalence[day]!r}, "
                    f"parallel {par_curve.prevalence[day]!r}"
                ),
            )
    return None


def _diff_final_state(
    seq_state: np.ndarray,
    seq_remaining: np.ndarray,
    sim: ParallelEpiSimdemics,
) -> Divergence | None:
    names = [s.name for s in sim.scenario.disease.states]
    if not np.array_equal(seq_state, sim.health_state):
        p = int(np.flatnonzero(seq_state != sim.health_state)[0])
        return Divergence(
            kind="final-state", person=p,
            detail=(
                f"final PTTS state differs: sequential {names[int(seq_state[p])]!r}, "
                f"parallel {names[int(sim.health_state[p])]!r}"
            ),
        )
    if not np.array_equal(seq_remaining, sim.days_remaining):
        p = int(np.flatnonzero(seq_remaining != sim.days_remaining)[0])
        return Divergence(
            kind="final-state", person=p,
            detail=(
                f"dwell timer differs: sequential {int(seq_remaining[p])}, "
                f"parallel {int(sim.days_remaining[p])}"
            ),
        )
    return None


# ----------------------------------------------------------------------
# matrix driver
# ----------------------------------------------------------------------
def _make_partition(graph, distribution: str, n_pes: int):
    if distribution == "rr":
        from repro.partition import round_robin_partition

        return round_robin_partition(graph, n_pes)
    from repro.partition import partition_bipartite

    return partition_bipartite(graph, n_pes)


def run_cell(
    scenario: Scenario,
    machine: MachineConfig,
    partition,
    sync: str,
    delivery: str,
    aggregation_bytes: int = 8 * 1024,
    kernel: str | None = None,
) -> ParallelEpiSimdemics:
    """Run one matrix cell with invariant checks on; return the sim."""
    dist = Distribution.from_partition(partition, Machine(machine))
    sim = ParallelEpiSimdemics(
        scenario,
        machine,
        dist,
        sync=sync,
        delivery=delivery,
        aggregation_bytes=aggregation_bytes,
        kernel=kernel,
        validate=True,
    )
    sim.run()
    return sim


def run_matrix(
    graph,
    *,
    machine: MachineConfig | None = None,
    n_days: int = 8,
    seed: int = 0,
    initial_infections: int = 10,
    transmissibility: float = 2.0e-4,
    distributions: tuple[str, ...] = DISTRIBUTIONS,
    sync_modes: tuple[str, ...] = SYNC_MODES,
    deliveries: tuple[str, ...] = DELIVERY_MODES,
    kernel: str | None = "flat",
    reference_kernel: str | None = "grouped",
    progress=None,
) -> OracleReport:
    """Run the full differential matrix on ``graph``.

    ``kernel`` is the exposure kernel of every parallel cell and
    ``reference_kernel`` the sequential side's; the deliberately
    asymmetric defaults make each cell a cross-kernel *and*
    cross-execution differential.  ``progress`` is an optional callable
    receiving one line per finished cell (the CLI passes ``print``).

    Restrict the axes to run a subset (here: one cell):

    >>> from repro.synthpop import PopulationConfig, generate_population
    >>> g = generate_population(PopulationConfig(n_persons=60), 0)
    >>> report = run_matrix(g, n_days=2, distributions=("rr",),
    ...                     sync_modes=("cd",), deliveries=("direct",))
    >>> len(report.cells), report.all_equal
    (1, True)
    """
    from repro.core.transmission import TransmissionModel
    from repro.partition import split_heavy_locations

    machine = machine or DEFAULT_MACHINE
    n_pes = Machine(machine).n_pes

    def scenario_for(g) -> Scenario:
        return Scenario(
            graph=g,
            n_days=n_days,
            seed=seed,
            initial_infections=initial_infections,
            transmission=TransmissionModel(transmissibility),
        )

    # Graph variants and their sequential references (computed once).
    variants: dict[str, tuple] = {}

    def variant_for(distribution: str):
        key = "split" if distribution.endswith("-split") else "raw"
        if key not in variants:
            g = (
                split_heavy_locations(graph, max_partitions=4 * n_pes).graph
                if key == "split"
                else graph
            )
            variants[key] = (g, sequential_reference(scenario_for(g), reference_kernel))
        return variants[key]

    cells: list[CellResult] = []
    partitions: dict[str, object] = {}
    for distribution in distributions:
        g, (seq_result, seq_events, seq_state, seq_remaining) = variant_for(distribution)
        if distribution not in partitions:
            partitions[distribution] = _make_partition(
                g, "rr" if distribution == "rr" else "gp", n_pes
            )
        for sync in sync_modes:
            for delivery in deliveries:
                sim = run_cell(
                    scenario_for(g), machine, partitions[distribution], sync, delivery,
                    kernel=kernel,
                )
                par_curve = sim.curve
                divergence = (
                    _diff_events(sim.scenario, seq_events, {
                        d: {(ev.person, ev.location) for ev in evs}
                        for d, evs in sim.checker.infection_log.items()
                    })
                    or _diff_curve(sim.scenario, seq_result.curve, par_curve)
                    or _diff_final_state(seq_state, seq_remaining, sim)
                )
                cell = CellResult(
                    distribution=distribution,
                    sync=sync,
                    delivery=delivery,
                    equal=divergence is None,
                    checks_passed=sim.checker.checks_passed,
                    divergence=divergence,
                )
                cells.append(cell)
                if progress is not None:
                    status = "exact" if cell.equal else "DIVERGED"
                    progress(f"{cell.label:<24} {status}  ({cell.checks_passed} checks)")
    return OracleReport(cells=cells, n_persons=graph.n_persons, n_days=n_days)


# ----------------------------------------------------------------------
# kernel-vs-kernel differential (old vs new exposure kernel)
# ----------------------------------------------------------------------
@dataclass
class KernelDiffReport:
    """Head-to-head comparison of two exposure kernels."""

    kernel_a: str
    kernel_b: str
    n_persons: int
    n_days: int
    divergence: Divergence | None = None

    @property
    def equal(self) -> bool:
        return self.divergence is None

    def format(self) -> str:
        head = (
            f"kernel differential: {self.kernel_a} vs {self.kernel_b}, "
            f"{self.n_persons} persons × {self.n_days} days"
        )
        if self.equal:
            return head + "\n  kernels bit-identical (events, minutes, curve, final state)"
        return head + "\n  " + self.divergence.format().replace("\n", "\n  ")


def run_kernel_differential(
    graph,
    *,
    n_days: int = 8,
    seed: int = 0,
    initial_infections: int = 10,
    transmissibility: float = 2.0e-4,
    kernel_a: str = "grouped",
    kernel_b: str = "flat",
) -> KernelDiffReport:
    """Run the sequential simulator once per kernel and compare exactly.

    Stricter than the matrix's event-set comparison: per-day infection
    events must match as ordered ``(person, location, minute)`` lists —
    the kernels promise bit-for-bit equivalence, including the order
    infect messages are emitted in — and the epidemic curve, final PTTS
    state and dwell timers must be identical.
    """
    from repro.core.transmission import TransmissionModel

    def scenario() -> Scenario:
        return Scenario(
            graph=graph,
            n_days=n_days,
            seed=seed,
            initial_infections=initial_infections,
            transmission=TransmissionModel(transmissibility),
        )

    report = KernelDiffReport(
        kernel_a=kernel_a, kernel_b=kernel_b,
        n_persons=graph.n_persons, n_days=n_days,
    )
    sc_a, sc_b = scenario(), scenario()
    sim_a = SequentialSimulator(sc_a, kernel=kernel_a)
    sim_b = SequentialSimulator(sc_b, kernel=kernel_b)
    factory = sc_a.rng_factory
    for day in range(n_days):
        day_a, phase_a = sim_a.step_day()
        day_b, phase_b = sim_b.step_day()
        ev_a = [(e.person, e.location, e.minute) for e in phase_a.infections]
        ev_b = [(e.person, e.location, e.minute) for e in phase_b.infections]
        if ev_a != ev_b:
            only_a = sorted(set(ev_a) - set(ev_b))
            only_b = sorted(set(ev_b) - set(ev_a))
            if only_a or only_b:
                person, location, _minute = (only_a or only_b)[0]
                detail = (
                    f"{len(only_a)} event(s) only in {kernel_a}, "
                    f"{len(only_b)} only in {kernel_b}"
                )
            else:
                person, location, _minute = ev_a[0]
                detail = "same events, different emission order"
            report.divergence = Divergence(
                kind="events", day=day, location=location, person=person,
                rng_key=factory.seed(RngFactory.LOCATION, day, location, person),
                detail=detail,
            )
            return report
        if (day_a.new_infections, day_a.prevalence) != (
            day_b.new_infections, day_b.prevalence
        ):
            report.divergence = Divergence(
                kind="curve", day=day,
                detail=(
                    f"{kernel_a}: {day_a.new_infections} new / prevalence "
                    f"{day_a.prevalence!r}; {kernel_b}: {day_b.new_infections} "
                    f"new / prevalence {day_b.prevalence!r}"
                ),
            )
            return report
    report.divergence = _diff_final_state_arrays(
        sim_a.health_state, sim_a.days_remaining,
        sim_b.health_state, sim_b.days_remaining,
    )
    return report


# ----------------------------------------------------------------------
# the SMP backend's cells (real processes vs sequential reference)
# ----------------------------------------------------------------------
#: Population presets the SMP matrix certifies on: "tiny" is the
#: generator's default synthetic town; "heavy" the Zipf-popularity
#: stress graph where one location absorbs a large share of all visits.
SMP_PRESETS = ("tiny", "heavy")


@dataclass
class SmpCellResult:
    """Outcome of one (preset, worker-count) SMP cell."""

    preset: str
    workers: int
    equal: bool
    backpressure: int = 0
    divergence: Divergence | None = None

    @property
    def label(self) -> str:
        return f"{self.preset}×w{self.workers}"


@dataclass
class SmpOracleReport:
    """All cells of one SMP differential run.

    >>> r = SmpOracleReport(cells=[], n_days=4)
    >>> r.all_equal
    True
    """

    cells: list[SmpCellResult]
    n_days: int

    @property
    def all_equal(self) -> bool:
        return all(c.equal for c in self.cells)

    def format(self) -> str:
        lines = [f"smp differential oracle: {len(self.cells)} cells, {self.n_days} days"]
        for c in self.cells:
            status = "exact" if c.equal else "DIVERGED"
            lines.append(
                f"  {c.label:<16} {status:>8}  ({c.backpressure} ring stalls)"
            )
            if c.divergence is not None:
                lines.append("    " + c.divergence.format().replace("\n", "\n    "))
        lines.append(
            "smp backend bit-identical to the sequential reference"
            if self.all_equal
            else "EQUIVALENCE BROKEN — see divergences above"
        )
        return "\n".join(lines)


def run_smp_matrix(
    *,
    workers: tuple[int, ...] = (1, 2, 4),
    presets: tuple[str, ...] = SMP_PRESETS,
    n_days: int = 6,
    seed: int = 0,
    initial_infections: int = 8,
    transmissibility: float = 2.0e-4,
    kernel: str | None = "flat",
    reference_kernel: str | None = "grouped",
    tiny_persons: int = 300,
    heavy_persons: int = 1500,
    heavy_locations: int = 200,
    ring_capacity: int = 1024,
    progress=None,
) -> SmpOracleReport:
    """Certify the shared-memory backend against the sequential reference.

    Every cell forks real worker processes
    (:class:`~repro.smp.SmpSimulator`), runs the scenario, and checks
    the per-day infection-event sets, the epidemic curve and the final
    per-person arrays for exact equality — the same three diffs as the
    simulated-runtime matrix.  A deliberately small ``ring_capacity``
    keeps the backpressure path exercised.

    >>> report = run_smp_matrix(workers=(2,), presets=("tiny",), n_days=2,
    ...                         tiny_persons=80)
    >>> report.all_equal
    True
    """
    from repro.core.transmission import TransmissionModel
    from repro.smp import SmpSimulator
    from repro.spec import PopulationSpec

    def graph_for(preset: str):
        # Both presets go through PopulationSpec — the same construction
        # path (and cache key) the CLI, the benchmarks and the lab use.
        if preset == "tiny":
            return PopulationSpec(
                n_persons=tiny_persons, seed=seed, name="synthetic"
            ).build()
        if preset == "heavy":
            return PopulationSpec(
                kind="preset", preset="heavy-tailed", n_persons=heavy_persons,
                params={"n_locations": heavy_locations},
            ).build()
        raise ValueError(f"unknown preset {preset!r} (expected one of {SMP_PRESETS})")

    def scenario_for(g) -> Scenario:
        return Scenario(
            graph=g,
            n_days=n_days,
            seed=seed,
            initial_infections=initial_infections,
            transmission=TransmissionModel(transmissibility),
        )

    cells: list[SmpCellResult] = []
    for preset in presets:
        g = graph_for(preset)
        seq_result, seq_events, seq_state, seq_remaining = sequential_reference(
            scenario_for(g), reference_kernel
        )
        for n_workers in workers:
            sim = SmpSimulator(
                scenario_for(g), n_workers=n_workers, kernel=kernel,
                ring_capacity=ring_capacity,
            )
            out = sim.run()
            divergence = (
                _diff_events(sim.scenario, seq_events, {
                    d: {(ev.person, ev.location) for ev in evs}
                    for d, evs in out.infection_log.items()
                })
                or _diff_curve(sim.scenario, seq_result.curve, out.result.curve)
                or _diff_final_state_arrays(
                    seq_state, seq_remaining,
                    out.final_health_state, out.final_days_remaining,
                )
            )
            cell = SmpCellResult(
                preset=preset,
                workers=n_workers,
                equal=divergence is None,
                backpressure=out.backpressure_events,
                divergence=divergence,
            )
            cells.append(cell)
            if progress is not None:
                status = "exact" if cell.equal else "DIVERGED"
                progress(f"{cell.label:<16} {status}")
    return SmpOracleReport(cells=cells, n_days=n_days)


# ----------------------------------------------------------------------
# the scenario matrix (every registered scenario × backends × kernels)
# ----------------------------------------------------------------------
@dataclass
class ScenarioCellResult:
    """Outcome of one (scenario, backend/kernel) cell."""

    scenario: str
    backend: str
    equal: bool
    checks_passed: int = 0
    divergence: Divergence | None = None

    @property
    def label(self) -> str:
        return f"{self.scenario}×{self.backend}"


@dataclass
class ScenarioOracleReport:
    """All cells of one scenario differential run.

    >>> r = ScenarioOracleReport(cells=[], n_persons=300, n_days=6)
    >>> r.all_equal
    True
    """

    cells: list[ScenarioCellResult]
    n_persons: int
    n_days: int

    @property
    def all_equal(self) -> bool:
        return all(c.equal for c in self.cells)

    @property
    def total_checks(self) -> int:
        return sum(c.checks_passed for c in self.cells)

    def format(self) -> str:
        lines = [
            f"scenario differential oracle: {len(self.cells)} cells, "
            f"{self.n_persons} persons × {self.n_days} days"
        ]
        for c in self.cells:
            status = "exact" if c.equal else "DIVERGED"
            extra = f"  ({c.checks_passed} checks)" if c.checks_passed else ""
            lines.append(f"  {c.label:<36} {status:>8}{extra}")
            if c.divergence is not None:
                lines.append("    " + c.divergence.format().replace("\n", "\n    "))
        lines.append(
            "every scenario bit-identical across backends and kernels"
            if self.all_equal
            else "EQUIVALENCE BROKEN — see divergences above"
        )
        return "\n".join(lines)


def run_scenario_matrix(
    *,
    scenarios: tuple[str, ...] | None = None,
    workers: tuple[int, ...] = (1, 2),
    machine: MachineConfig | None = None,
    n_days: int = 6,
    seed: int = 0,
    initial_infections: int = 8,
    transmissibility: float = 3.0e-4,
    persons: int = 300,
    kernel: str | None = "flat",
    reference_kernel: str | None = "grouped",
    ring_capacity: int = 1024,
    progress=None,
) -> ScenarioOracleReport:
    """Certify every registered scenario bit-identical across backends.

    For each scenario name (default: all of
    :func:`repro.scenarios.names`) the grouped-kernel sequential run is
    the reference; the cells compare it against the sequential
    simulator on ``kernel`` (plus the compiled kernel when a C
    toolchain is present), the chare runtime with invariant checks on
    (which also exercises each component's declared
    ``extra_transitions``), and the shared-memory backend at each
    worker count — the same three exact diffs as the base matrix.

    >>> report = run_scenario_matrix(scenarios=("turnover",), workers=(1,),
    ...                              n_days=2, persons=80)
    >>> report.all_equal
    True
    """
    from repro.core import ckernel
    from repro.scenarios import registry
    from repro.smp import SmpSimulator
    from repro.spec import PopulationSpec

    machine = machine or DEFAULT_MACHINE
    n_pes = Machine(machine).n_pes
    graph = PopulationSpec(
        n_persons=persons, seed=seed, name="scenario-oracle"
    ).build()
    partition = _make_partition(graph, "rr", n_pes)

    def build(name: str) -> Scenario:
        return registry.build_scenario(
            name, graph, n_days=n_days, seed=seed,
            initial_infections=initial_infections,
            transmissibility=transmissibility,
        )

    def emit(cell: ScenarioCellResult) -> None:
        cells.append(cell)
        if progress is not None:
            status = "exact" if cell.equal else "DIVERGED"
            progress(f"{cell.label:<36} {status}")

    cells: list[ScenarioCellResult] = []
    seq_kernels = [kernel] + (["compiled"] if ckernel.available() else [])
    for name in scenarios or tuple(registry.names()):
        sc = build(name)
        seq_result, seq_events, seq_state, seq_remaining = sequential_reference(
            sc, reference_kernel
        )
        for k in seq_kernels:
            _res, ev, st, rem = sequential_reference(build(name), k)
            divergence = (
                _diff_events(sc, seq_events, ev)
                or _diff_curve(sc, seq_result.curve, _res.curve)
                or _diff_final_state_arrays(seq_state, seq_remaining, st, rem)
            )
            emit(ScenarioCellResult(
                scenario=name, backend=f"seq-{k}",
                equal=divergence is None, divergence=divergence,
            ))
        sim = run_cell(build(name), machine, partition, "cd", "aggregated",
                       kernel=kernel)
        divergence = (
            _diff_events(sim.scenario, seq_events, {
                d: {(ev.person, ev.location) for ev in evs}
                for d, evs in sim.checker.infection_log.items()
            })
            or _diff_curve(sim.scenario, seq_result.curve, sim.curve)
            or _diff_final_state(seq_state, seq_remaining, sim)
        )
        emit(ScenarioCellResult(
            scenario=name, backend="charm-rr",
            equal=divergence is None,
            checks_passed=sim.checker.checks_passed,
            divergence=divergence,
        ))
        for n_workers in workers:
            out = SmpSimulator(
                build(name), n_workers=n_workers, kernel=kernel,
                ring_capacity=ring_capacity,
            ).run()
            divergence = (
                _diff_events(sc, seq_events, {
                    d: {(ev.person, ev.location) for ev in evs}
                    for d, evs in out.infection_log.items()
                })
                or _diff_curve(sc, seq_result.curve, out.result.curve)
                or _diff_final_state_arrays(
                    seq_state, seq_remaining,
                    out.final_health_state, out.final_days_remaining,
                )
            )
            emit(ScenarioCellResult(
                scenario=name, backend=f"smp-w{n_workers}",
                equal=divergence is None, divergence=divergence,
            ))
    return ScenarioOracleReport(
        cells=cells, n_persons=graph.n_persons, n_days=n_days
    )


def _diff_final_state_arrays(
    state_a: np.ndarray,
    remaining_a: np.ndarray,
    state_b: np.ndarray,
    remaining_b: np.ndarray,
) -> Divergence | None:
    if not np.array_equal(state_a, state_b):
        p = int(np.flatnonzero(state_a != state_b)[0])
        return Divergence(
            kind="final-state", person=p,
            detail=f"final PTTS state index differs: {int(state_a[p])} vs {int(state_b[p])}",
        )
    if not np.array_equal(remaining_a, remaining_b):
        p = int(np.flatnonzero(remaining_a != remaining_b)[0])
        return Divergence(
            kind="final-state", person=p,
            detail=f"dwell timer differs: {int(remaining_a[p])} vs {int(remaining_b[p])}",
        )
    return None
