"""Distribution-level oracle against independent baseline simulators.

The differential oracle (:mod:`repro.validate.oracle`) proves every
execution mode equals the sequential reference — it cannot notice a bug
*in* the reference.  This oracle can: it runs matched ensembles of

* the sequential reference with :func:`repro.core.disease.sir_model`,
* :func:`repro.baselines.fastsir.run_fastsir`, and
* :func:`repro.baselines.dijkstra.run_dijkstra`

on the same synthetic populations and requires the three **final-size
and prevalence-trajectory distributions** to be statistically
indistinguishable.  The baselines are implemented from their papers on
the projected contact graph, sharing no model code with the simulator,
so agreement here certifies the additive-hazard transmission semantics,
the PTTS dwell bookkeeping and the seeding conventions against two
independent derivations of the same stochastic process.

Statistical design (see :mod:`repro.baselines.stats`): each
(preset × baseline) cell runs three permutation tests — KS and
Anderson–Darling on final sizes, and a sup-over-days KS on the
prevalence trajectories — with the familywise ``alpha`` Bonferroni-split
across all tests of the report.  Permutation p-values with keyed
generators make the whole report a pure function of ``seed``: a passing
configuration can never start flaking, and the false-positive rate is
bounded by ``alpha`` by construction.

``mutation=`` injects a deliberate model bug on the *model side only*
(the oracle-power self-test): a passing oracle must flag every
supported mutation while passing the unmodified model.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field

import numpy as np

from repro.baselines import (
    ContactGraph,
    HeavyTailCheck,
    MetricComparison,
    SEIRParams,
    compare_samples,
    heavy_tail_check,
    project_contact_graph,
    run_dijkstra,
    run_fastsir,
)
from repro.baselines.stats import permutation_pvalue, trajectory_ks_statistic
from repro.core.scenario import Scenario
from repro.core.simulator import SequentialSimulator
from repro.core.transmission import TransmissionModel
from repro.util.rng import RngFactory, derive_seed

__all__ = [
    "EXTERNAL_PRESETS",
    "BASELINES",
    "MUTATIONS",
    "ExternalCellResult",
    "ExternalOracleReport",
    "run_external_oracle",
]

EXTERNAL_PRESETS = ("tiny", "heavy")
BASELINES = ("fastsir", "dijkstra")
#: Supported model-side bug injections (the oracle-power self-test).
MUTATIONS = ("transmissibility_x2", "drop_recovery")

#: Stream salts below the BASELINE prefix: one per consumer so the
#: model, the two baselines and the permutation tests stay independent.
_SALT_FASTSIR = 0
_SALT_DIJKSTRA = 1
_SALT_MODEL = 2
_SALT_PERMUTE = 3


def _mutated_disease(mutation: str | None, latent_days: int, infectious_days: int):
    """The model-side PTTS — possibly with an injected bug."""
    from repro.core.disease import (
        DiseaseModel,
        DwellDistribution,
        HealthState,
        Transition,
        UNTREATED,
        sir_model,
    )

    if mutation is None or mutation == "transmissibility_x2":
        return sir_model(infectious_days=infectious_days, latent_days=latent_days)
    if mutation == "drop_recovery":
        # The classic lost-transition bug: infectious forever.
        states = [
            HealthState("S", susceptibility=1.0),
            HealthState(
                "E",
                dwell=DwellDistribution.fixed(latent_days),
                transitions={UNTREATED: (Transition("I", 1.0),)},
            ),
            HealthState("I", infectivity=1.0, symptomatic=True),
        ]
        return DiseaseModel(states, susceptible="S", infection_entry={UNTREATED: "E"})
    raise ValueError(f"unknown mutation {mutation!r} (expected one of {MUTATIONS})")


# ----------------------------------------------------------------------
# model-side replications (optionally fanned out over fork workers)
# ----------------------------------------------------------------------
#: Context inherited by forked pool workers (numpy graphs fork cheaply
#: via copy-on-write; no pickling of the population per task).
_MODEL_CTX: dict = {}


def _model_replication(rep: int) -> tuple[int, np.ndarray]:
    ctx = _MODEL_CTX
    scenario = Scenario(
        graph=ctx["graph"],
        disease=ctx["disease"],
        transmission=ctx["transmission"],
        n_days=ctx["n_days"],
        initial_infections=ctx["initial_infections"],
        seed=derive_seed(ctx["seed"], RngFactory.BASELINE, rep, _SALT_MODEL),
    )
    result = SequentialSimulator(scenario).run()
    return result.total_infections, np.asarray(result.curve.prevalence, dtype=np.float64)


def _model_ensemble(
    graph,
    disease,
    transmission: TransmissionModel,
    *,
    n_days: int,
    initial_infections: int,
    seed: int,
    replications: int,
    workers: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Final sizes and prevalence trajectories of the model ensemble.

    Replication ``rep`` runs under root seed
    ``derive_seed(seed, BASELINE, rep, salt)`` regardless of ``workers``
    and results are collected in replication order, so the ensemble is
    bit-identical for any worker count (asserted by
    ``tests/validate/test_external.py``).
    """
    _MODEL_CTX.update(
        graph=graph,
        disease=disease,
        transmission=transmission,
        n_days=n_days,
        initial_infections=initial_infections,
        seed=seed,
    )
    try:
        if workers <= 1:
            rows = [_model_replication(rep) for rep in range(replications)]
        else:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=workers) as pool:
                rows = pool.map(_model_replication, range(replications))
    finally:
        _MODEL_CTX.clear()
    sizes = np.array([r[0] for r in rows], dtype=np.float64)
    prevalence = np.stack([r[1] for r in rows])
    return sizes, prevalence


def _baseline_ensemble(
    contact: ContactGraph,
    params: SEIRParams,
    *,
    baseline: str,
    n_days: int,
    initial_infections: int,
    factory: RngFactory,
    replications: int,
) -> tuple[np.ndarray, np.ndarray]:
    runner = run_fastsir if baseline == "fastsir" else run_dijkstra
    salt = _SALT_FASTSIR if baseline == "fastsir" else _SALT_DIJKSTRA
    sizes = np.empty(replications, dtype=np.float64)
    prevalence = np.empty((replications, n_days), dtype=np.float64)
    for rep in range(replications):
        rng = factory.stream(RngFactory.BASELINE, rep, salt)
        result = runner(contact, params, n_days, initial_infections, rng)
        sizes[rep] = result.final_size
        prevalence[rep] = result.prevalence
    return sizes, prevalence


# ----------------------------------------------------------------------
# report structure
# ----------------------------------------------------------------------
@dataclass
class ExternalCellResult:
    """One (preset × baseline) distribution comparison."""

    preset: str
    baseline: str
    comparisons: list[MetricComparison]
    model_final_sizes: np.ndarray
    baseline_final_sizes: np.ndarray
    model_prevalence: np.ndarray
    baseline_prevalence: np.ndarray

    @property
    def label(self) -> str:
        return f"{self.preset}×{self.baseline}"

    @property
    def equal(self) -> bool:
        return not any(c.reject for c in self.comparisons)

    def format(self) -> str:
        status = "agrees" if self.equal else "DIVERGED"
        lines = [
            f"{self.label:<18} {status:>8}  "
            f"(model final size {self.model_final_sizes.mean():.1f} ± "
            f"{self.model_final_sizes.std():.1f}, "
            f"{self.baseline} {self.baseline_final_sizes.mean():.1f} ± "
            f"{self.baseline_final_sizes.std():.1f})"
        ]
        for c in self.comparisons:
            marker = "!" if c.reject else " "
            lines.append(f"  {marker} {c.format()}")
        return "\n".join(lines)


@dataclass
class ExternalOracleReport:
    """All cells of one distribution-oracle run.

    >>> r = ExternalOracleReport(cells=[], n_days=8, replications=10,
    ...                          alpha=0.01, mutation=None)
    >>> r.all_equal
    True
    """

    cells: list[ExternalCellResult]
    n_days: int
    replications: int
    alpha: float
    mutation: str | None = None
    heavy_tail: HeavyTailCheck | None = None
    notes: list[str] = field(default_factory=list)

    @property
    def all_equal(self) -> bool:
        cells_ok = all(c.equal for c in self.cells)
        tail_ok = self.heavy_tail is None or self.heavy_tail.passed
        return cells_ok and tail_ok

    def format(self) -> str:
        head = (
            f"external distribution oracle: {len(self.cells)} cells, "
            f"{self.replications} replications × {self.n_days} days, "
            f"familywise alpha {self.alpha:g}"
        )
        if self.mutation:
            head += f", injected mutation {self.mutation!r}"
        lines = [head]
        for cell in self.cells:
            lines.append("  " + cell.format().replace("\n", "\n  "))
        if self.heavy_tail is not None:
            lines.append("  heavy-tail " + self.heavy_tail.format())
        lines.extend(f"  note: {n}" for n in self.notes)
        if self.all_equal:
            lines.append(
                "model distributions indistinguishable from the independent baselines"
            )
        else:
            lines.append("DISTRIBUTIONS DIVERGED — see cells above")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run_external_oracle(
    *,
    presets: tuple[str, ...] = EXTERNAL_PRESETS,
    baselines: tuple[str, ...] = BASELINES,
    n_days: int = 12,
    replications: int = 30,
    seed: int = 0,
    transmissibility: float = 1.0e-4,
    latent_days: int = 2,
    infectious_days: int = 4,
    initial_infections: int = 3,
    alpha: float = 0.01,
    n_permutations: int = 2000,
    workers: int = 1,
    mutation: str | None = None,
    heavy_tail: bool = True,
    heavy_tail_replications: int = 200,
    tiny_persons: int = 300,
    heavy_persons: int = 1500,
    heavy_locations: int = 200,
    progress=None,
) -> ExternalOracleReport:
    """Run the distribution-level oracle; return its structured report.

    Every stochastic choice (replications, permutation shuffles) is
    keyed below ``seed``, so the report is a deterministic function of
    its arguments.  ``workers`` fans the model-side replications out
    over forked processes without changing any result bit.

    The per-test rejection level is ``alpha`` divided by the number of
    tests in the report (three per cell); ``n_permutations`` must
    resolve p-values below that level, i.e. ``1/(n_permutations + 1) <
    alpha / (3 · n_cells)`` — raised as an error otherwise, because an
    under-resolved oracle silently loses all power.

    >>> report = run_external_oracle(presets=("tiny",), n_days=4,
    ...     replications=4, tiny_persons=60, n_permutations=2000,
    ...     heavy_tail=False)
    >>> len(report.cells)
    2
    """
    from repro.spec import PopulationSpec

    unknown = set(presets) - set(EXTERNAL_PRESETS)
    if unknown:
        raise ValueError(f"unknown presets {sorted(unknown)}")
    if mutation is not None and mutation not in MUTATIONS:
        raise ValueError(f"unknown mutation {mutation!r} (expected one of {MUTATIONS})")

    n_cells = len(presets) * len(baselines)
    n_tests = 3 * n_cells
    threshold = alpha / n_tests
    if 1.0 / (n_permutations + 1) >= threshold:
        raise ValueError(
            f"n_permutations={n_permutations} cannot resolve p < {threshold:g}; "
            f"need at least {int(np.ceil(1.0 / threshold))}"
        )

    params = SEIRParams(transmissibility, latent_days, infectious_days)
    disease = _mutated_disease(mutation, latent_days, infectious_days)
    model_r = (
        2.0 * transmissibility if mutation == "transmissibility_x2" else transmissibility
    )
    factory = RngFactory(seed)

    cells: list[ExternalCellResult] = []
    tail_check: HeavyTailCheck | None = None
    for preset_idx, preset in enumerate(presets):
        if preset == "tiny":
            graph = PopulationSpec(
                n_persons=tiny_persons, seed=seed, name="oracle-tiny"
            ).build()
        else:
            graph = PopulationSpec(
                kind="preset", preset="heavy-tailed", n_persons=heavy_persons,
                params={"n_locations": heavy_locations},
            ).build()
        contact = project_contact_graph(graph)
        contact.validate()

        model_sizes, model_prev = _model_ensemble(
            graph,
            disease,
            TransmissionModel(model_r),
            n_days=n_days,
            initial_infections=initial_infections,
            seed=seed,
            replications=replications,
            workers=workers,
        )

        for baseline_idx, baseline in enumerate(baselines):
            base_sizes, base_prev = _baseline_ensemble(
                contact,
                params,
                baseline=baseline,
                n_days=n_days,
                initial_infections=initial_infections,
                factory=factory,
                replications=replications,
            )
            perm_rng = factory.stream(
                RngFactory.BASELINE, 1000 + preset_idx, baseline_idx, _SALT_PERMUTE
            )
            comparisons = [
                compare_samples(
                    model_sizes,
                    base_sizes,
                    perm_rng,
                    metric="final-size",
                    threshold=threshold,
                    n_permutations=n_permutations,
                ),
            ]
            traj, traj_p = permutation_pvalue(
                model_prev,
                base_prev,
                perm_rng,
                statistic=trajectory_ks_statistic,
                n_permutations=n_permutations,
            )
            comparisons.append(
                MetricComparison(
                    metric="prevalence",
                    day=None,
                    ks=traj,
                    ks_pvalue=traj_p,
                    ad=0.0,
                    ad_pvalue=1.0,
                    threshold=threshold,
                    detail="sup over days of per-day KS",
                )
            )
            cell = ExternalCellResult(
                preset=preset,
                baseline=baseline,
                comparisons=comparisons,
                model_final_sizes=model_sizes,
                baseline_final_sizes=base_sizes,
                model_prevalence=model_prev,
                baseline_prevalence=base_prev,
            )
            cells.append(cell)
            if progress is not None:
                progress(f"{cell.label:<18} {'agrees' if cell.equal else 'DIVERGED'}")

        if preset == "heavy" and heavy_tail:
            tail_check = heavy_tail_check(
                contact,
                rng_factory=factory,
                latent_days=latent_days,
                infectious_days=infectious_days,
                replications=heavy_tail_replications,
            )
            if progress is not None:
                progress("heavy-tail " + tail_check.format())

    return ExternalOracleReport(
        cells=cells,
        n_days=n_days,
        replications=replications,
        alpha=alpha,
        mutation=mutation,
        heavy_tail=tail_check,
    )
