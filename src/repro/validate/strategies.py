"""Hypothesis strategies producing small-but-adversarial inputs.

Property-based tests across the suite draw from these strategies
instead of rolling their own graphs: the populations are tiny (tens of
persons) so a full sequential↔parallel differential run fits in a
hypothesis example budget, but they are deliberately skewed toward the
corners where distribution bugs hide:

* **heavy-tail** — one location absorbs most visits (the paper's
  splitLoc motivation: a single overloaded LocationManager);
* **zero-visit day** — persons exist but nobody goes anywhere, so the
  visit phase must complete with zero messages (detector edge case);
* **one-person** — a degenerate population of a single person;
* **single-subloc** — every location has exactly one sublocation, the
  degenerate case for the splitLoc preprocessor.

All drawn graphs satisfy ``PersonLocationGraph.validate()`` and are
sorted by ``(person, start)`` as the loaders guarantee.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core.scenario import Scenario
from repro.core.transmission import TransmissionModel
from repro.synthpop.graph import MINUTES_PER_DAY, LocationType, PersonLocationGraph

__all__ = [
    "PROFILES",
    "visit_graphs",
    "scenarios",
    "scenario_compositions",
    "machine_configs",
]

PROFILES = ("uniform", "heavy-tail", "zero-visits", "one-person", "single-subloc")


def _build_graph(
    name: str,
    n_persons: int,
    n_locations: int,
    visits: list[tuple[int, int, int, int, int]],
    n_sublocs: np.ndarray,
    rng: np.random.Generator,
) -> PersonLocationGraph:
    visits.sort(key=lambda v: (v[0], v[3]))
    cols = list(zip(*visits)) if visits else [[], [], [], [], []]
    g = PersonLocationGraph(
        name=name,
        n_persons=n_persons,
        n_locations=n_locations,
        visit_person=np.asarray(cols[0], dtype=np.int64),
        visit_location=np.asarray(cols[1], dtype=np.int64),
        visit_subloc=np.asarray(cols[2], dtype=np.int64),
        visit_start=np.asarray(cols[3], dtype=np.int64),
        visit_end=np.asarray(cols[4], dtype=np.int64),
        location_n_sublocs=n_sublocs,
        location_type=rng.integers(0, len(LocationType), n_locations).astype(np.int64),
        person_age=rng.integers(1, 90, n_persons).astype(np.int64),
        person_home=rng.integers(0, n_locations, n_persons).astype(np.int64),
    )
    g.validate()
    return g


@st.composite
def visit_graphs(
    draw,
    max_persons: int = 24,
    max_locations: int = 10,
    profiles: tuple[str, ...] = PROFILES,
):
    """Draw a small validated :class:`PersonLocationGraph`."""
    profile = draw(st.sampled_from(profiles))
    rng_seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(rng_seed)

    if profile == "one-person":
        n_persons, n_locations = 1, 1
    else:
        n_persons = draw(st.integers(2, max_persons))
        n_locations = draw(st.integers(1, max_locations))

    if profile == "single-subloc":
        n_sublocs = np.ones(n_locations, dtype=np.int64)
    else:
        n_sublocs = rng.integers(1, 4, n_locations).astype(np.int64)

    visits: list[tuple[int, int, int, int, int]] = []
    if profile != "zero-visits":
        # Heavy-tail funnels ~80% of visits into location 0.
        hot_bias = draw(st.floats(0.7, 0.95)) if profile == "heavy-tail" else None
        for person in range(n_persons):
            n_visits = draw(st.integers(0 if profile == "uniform" else 1, 3))
            for _ in range(n_visits):
                if hot_bias is not None and rng.random() < hot_bias:
                    loc = 0
                else:
                    loc = int(rng.integers(0, n_locations))
                subloc = int(rng.integers(0, n_sublocs[loc]))
                start = int(rng.integers(0, MINUTES_PER_DAY - 1))
                end = int(rng.integers(start + 1, MINUTES_PER_DAY + 1))
                visits.append((person, loc, subloc, start, end))

    if profile == "heavy-tail" and visits:
        # The bias makes location 0 the hottest only in expectation; a
        # small draw can leave another location with more visits.  Swap
        # labels so the profile's contract — location 0 carries the
        # plurality — holds on every example.
        counts = np.bincount([v[1] for v in visits], minlength=n_locations)
        hot = int(counts.argmax())
        if hot != 0:
            relabel = {0: hot, hot: 0}
            visits = [
                (p, relabel.get(loc, loc), s, a, b) for p, loc, s, a, b in visits
            ]
            n_sublocs[[0, hot]] = n_sublocs[[hot, 0]]

    return _build_graph(
        f"hyp-{profile}-{rng_seed}", n_persons, n_locations, visits, n_sublocs, rng
    )


@st.composite
def scenarios(
    draw,
    max_persons: int = 24,
    max_days: int = 5,
    profiles: tuple[str, ...] = PROFILES,
):
    """Draw a full :class:`Scenario` around a drawn graph."""
    from repro.core.disease import influenza_model, sir_model

    graph = draw(visit_graphs(max_persons=max_persons, profiles=profiles))
    disease = draw(st.sampled_from([influenza_model, sir_model]))()
    return Scenario(
        graph=graph,
        disease=disease,
        transmission=TransmissionModel(draw(st.floats(1e-5, 5e-3))),
        n_days=draw(st.integers(1, max_days)),
        initial_infections=draw(st.integers(0, min(3, graph.n_persons))),
        seed=draw(st.integers(0, 2**16)),
    )


@st.composite
def scenario_compositions(
    draw,
    max_persons: int = 24,
    max_days: int = 5,
    profiles: tuple[str, ...] = PROFILES,
):
    """Draw a registered model-component scenario on a drawn graph.

    Samples a :mod:`repro.scenarios` registry entry, builds it over an
    adversarial :func:`visit_graphs` graph, and optionally composes a
    model-independent extra component on top (demographic turnover, or
    the symptomatic stay-home behavioural intervention) — exercising
    the claim that components stack without caring about each other.
    """
    from repro.core.interventions import StayHomeWhenSymptomatic
    from repro.scenarios import DemographicTurnover, names
    from repro.scenarios.registry import build_scenario

    graph = draw(visit_graphs(max_persons=max_persons, profiles=profiles))
    name = draw(st.sampled_from(names()))
    extra = draw(st.sampled_from([None, "turnover", "stay-home"]))
    extras = []
    if extra == "turnover" and name != "turnover":
        extras.append(DemographicTurnover(rate=draw(st.floats(0.01, 0.3))))
    elif extra == "stay-home":
        extras.append(StayHomeWhenSymptomatic(compliance=draw(st.floats(0.1, 1.0))))
    return build_scenario(
        name,
        graph,
        n_days=draw(st.integers(1, max_days)),
        seed=draw(st.integers(0, 2**16)),
        initial_infections=draw(st.integers(0, min(3, graph.n_persons))),
        transmissibility=draw(st.floats(1e-5, 5e-3)),
        extra_interventions=extras,
    )


@st.composite
def machine_configs(draw, max_pes: int = 8):
    """Draw a small :class:`MachineConfig` (1–2 nodes, SMP or not)."""
    from repro.charm.machine import MachineConfig

    n_nodes = draw(st.integers(1, 2))
    cores = draw(st.integers(2, max(2, max_pes // n_nodes)))
    return MachineConfig(
        n_nodes=n_nodes,
        cores_per_node=cores,
        smp=draw(st.booleans()),
        processes_per_node=1,
    )
