"""FastSIR reference simulator (Antulov-Fantulin et al., arXiv:1202.1639).

The naive discrete-day process draws one Bernoulli per (infectious
node, susceptible neighbour, day).  FastSIR's observation: for a node
infectious for ``I`` days and an edge with per-day probability ``p``,
*whether* the neighbour is ever infected along that edge is a single
Bernoulli with ``P = 1 − (1−p)^I``, and *when* is a truncated
geometric — so one uniform per (infectious node, neighbour) suffices.
Both draws come from the same uniform by inversion, which keeps the
replication bit-reproducible for a given keyed generator.

The day loop processes nodes in the order they *become infectious*.
A candidate infection produced on processing day ``d`` always lands on
day ``≥ d``, and latency is ≥ 1 day, so by the time a node is
processed its infection day is final — no retraction, no priority
queue.  Cost is O(edges incident to ever-infected nodes), independent
of population size.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.model import (
    UNINFECTED,
    BaselineResult,
    SEIRParams,
    curve_from_infection_days,
    draw_index_cases,
    edge_transmission_probability,
)
from repro.baselines.projection import ContactGraph

__all__ = ["run_fastsir"]


def _segment_rows(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``[s, s+c)`` ranges without a Python loop."""
    total = int(counts.sum())
    offsets = np.repeat(starts, counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return offsets + within


def run_fastsir(
    contact: ContactGraph,
    params: SEIRParams,
    n_days: int,
    initial_infections: int | np.ndarray,
    rng: np.random.Generator,
) -> BaselineResult:
    """Run one FastSIR replication; return its epidemic curve.

    ``rng`` drives every draw of the replication — pass a keyed stream
    (e.g. ``RngFactory.stream(RngFactory.BASELINE, replication, 0)``)
    so replications are reproducible and independent.

    >>> from repro.util.rng import RngFactory
    >>> two = ContactGraph(2, np.array([0, 1, 2]), np.array([1, 0]),
    ...                    np.array([600.0, 600.0]))
    >>> r = run_fastsir(two, SEIRParams(0.5, 1, 2), 4, np.array([0]),
    ...                 RngFactory(0).stream(RngFactory.BASELINE, 0))
    >>> r.final_size
    2
    """
    if n_days < 1:
        raise ValueError("n_days must be positive")
    n = contact.n_persons
    t_inf = np.full(n, UNINFECTED, dtype=np.int64)
    seeds = draw_index_cases(n, initial_infections, rng)
    t_inf[seeds] = -1  # index cases are seeded before day 0
    L, I = params.latent_days, params.infectious_days

    for day in range(n_days):
        newly_infectious = np.flatnonzero(t_inf + L == day)
        if newly_infectious.size == 0:
            continue
        # Concatenated adjacency segments of today's infectious nodes
        # (ascending node order ⇒ a deterministic draw sequence).
        counts = contact.degrees[newly_infectious]
        total = int(counts.sum())
        if total == 0:
            continue
        rows = _segment_rows(contact.indptr[newly_infectious], counts)
        nbr = contact.indices[rows]
        p = edge_transmission_probability(contact.weights[rows], params.transmissibility)
        # A saturated edge (p rounding to 1.0) makes log1p(-p) = -inf;
        # the arithmetic still yields p_total = 1 and k = 1, so only the
        # spurious divide warning needs suppressing.
        with np.errstate(divide="ignore"):
            p_total = -np.expm1(I * np.log1p(-p))
            u = rng.random(total)
            hit = u < p_total
            if not hit.any():
                continue
            # Inverse-CDF of the truncated geometric from the same
            # uniform: transmission on the k-th infectious day, k in 1..I.
            k = np.ceil(np.log1p(-u[hit]) / np.log1p(-p[hit])).astype(np.int64)
        np.clip(k, 1, I, out=k)
        candidate = day + k - 1
        inside = candidate < n_days
        np.minimum.at(t_inf, nbr[hit][inside], candidate[inside])

    return curve_from_infection_days(t_inf, params, n_days)
