"""Shared discrete-day SEIR parameterisation of the baselines.

Both baselines simulate the same process as the main model running
:func:`repro.core.disease.sir_model` (fixed latent and infectious
dwell) over a static daily contact pattern:

* a person infected during day ``d`` is **exposed** for days
  ``d .. d+L−1``, **infectious** for days ``d+L .. d+L+I−1`` and
  **recovered** from day ``d+L+I`` (index cases behave as if infected
  on day ``−1``, matching the reference simulator's pre-day-0 seeding);
* on each infectious day, edge ``(u, v)`` transmits with probability
  ``p(u,v) = 1 − (1 − r)^w(u,v)`` independently — exactly the main
  model's accumulated-hazard infection probability for summed overlap
  ``w`` (see :mod:`repro.baselines.projection`).

The two simulators never step through those daily Bernoullis; each
compresses them into one draw per (infectious node, neighbour) — that
is their entire speed advantage — and this module holds the shared
pieces: the parameter bundle, per-edge probabilities, index-case
sampling, and the conversion from per-person infection days to the
epidemic curve the oracle compares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "UNINFECTED",
    "SEIRParams",
    "BaselineResult",
    "edge_transmission_probability",
    "draw_index_cases",
    "curve_from_infection_days",
]

#: Sentinel infection day for never-infected persons (far beyond any
#: horizon, small enough that ``UNINFECTED + L`` cannot overflow).
UNINFECTED = np.int64(1) << 40


@dataclass(frozen=True)
class SEIRParams:
    """Matched parameters of the baseline SEIR process.

    ``transmissibility`` is the per-minute coefficient of
    :class:`repro.core.transmission.TransmissionModel`;
    ``latent_days`` / ``infectious_days`` are the fixed dwell times of
    :func:`repro.core.disease.sir_model`.

    >>> SEIRParams(2e-4).infectious_days
    4
    """

    transmissibility: float
    latent_days: int = 2
    infectious_days: int = 4

    def __post_init__(self) -> None:
        if not (0.0 <= self.transmissibility < 1.0):
            raise ValueError("transmissibility must be in [0, 1)")
        if self.latent_days < 1 or self.infectious_days < 1:
            raise ValueError("latent/infectious dwell must be >= 1 day")


def edge_transmission_probability(
    weights: np.ndarray, transmissibility: float, days: int = 1
) -> np.ndarray:
    """Transmission probability over ``days`` infectious days per edge.

    ``1 − (1 − r)^(w·days)`` evaluated in log space — identical to the
    main model's ``1 − exp(−hazard)`` with hazard
    ``w·days·(−log1p(−r))``.
    """
    return -np.expm1(np.asarray(weights, dtype=np.float64) * days * np.log1p(-transmissibility))


def draw_index_cases(
    n_persons: int, initial_infections: int | np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Index-case ids: explicit array, or ``k`` distinct uniform draws."""
    if isinstance(initial_infections, (int, np.integer)):
        k = int(initial_infections)
        if not (0 <= k <= n_persons):
            raise ValueError("initial_infections out of range")
        return rng.choice(n_persons, size=k, replace=False).astype(np.int64)
    cases = np.asarray(initial_infections, dtype=np.int64)
    if cases.size and (cases.min() < 0 or cases.max() >= n_persons):
        raise ValueError("index case id out of range")
    return cases


@dataclass
class BaselineResult:
    """One baseline replication, in the main model's curve vocabulary.

    ``infection_day[p]`` is the day person ``p`` was infected (``−1``
    for index cases, :data:`UNINFECTED` if never), and the arrays are
    day-indexed exactly like
    :class:`repro.core.metrics.EpiCurve`: ``new_infections[0]``
    includes the index cases, ``prevalence[d]`` is the end-of-day
    fraction of persons exposed or infectious.
    """

    infection_day: np.ndarray
    new_infections: np.ndarray
    prevalence: np.ndarray

    @property
    def n_days(self) -> int:
        return int(self.new_infections.size)

    @property
    def final_size(self) -> int:
        """Total persons ever infected within the horizon."""
        return int(self.new_infections.sum())


def curve_from_infection_days(
    infection_day: np.ndarray, params: SEIRParams, n_days: int
) -> BaselineResult:
    """Derive the epidemic curve from per-person infection days.

    >>> t = np.array([-1, 0, UNINFECTED, 2])
    >>> r = curve_from_infection_days(t, SEIRParams(1e-4, 1, 1), 4)
    >>> r.new_infections.tolist(), r.final_size
    ([2, 0, 1, 0], 3)
    """
    t = np.asarray(infection_day, dtype=np.int64)
    n_persons = t.size
    infected = t < n_days
    days = t[infected]
    new = np.bincount(np.maximum(days, 0), minlength=n_days)[:n_days]

    # Prevalence via an active-interval difference array: person p is
    # counted on days max(t, 0) .. min(t+L+I−1, n_days−1); matches the
    # reference's "ever infected, not susceptible, not yet terminal".
    active = params.latent_days + params.infectious_days
    lo = np.maximum(days, 0)
    hi = np.minimum(days + active, n_days)
    delta = np.zeros(n_days + 1, dtype=np.int64)
    np.add.at(delta, lo, 1)
    np.add.at(delta, hi, -1)
    prevalence = np.cumsum(delta[:n_days]) / max(1, n_persons)
    return BaselineResult(
        infection_day=t,
        new_infections=new.astype(np.int64),
        prevalence=prevalence.astype(np.float64),
    )
