"""Two-sample distribution comparison: KS, Anderson–Darling, permutation.

The distribution oracle compares *samples* (final sizes, per-day
prevalences across seeded replications), not trajectories, so it needs
two-sample tests that are trustworthy on small, heavily tied, discrete
data.  Asymptotic p-values are wrong in exactly that regime; instead
every p-value here is a **permutation p-value** driven by a caller
-supplied keyed generator:

* deterministic — fixed seeds give the same p-value every run, so a
  passing oracle configuration cannot start flaking in CI;
* exact under the null up to permutation resolution —
  ``P(p ≤ α) ≤ α`` holds by construction (the +1 in numerator and
  denominator), ties included, which
  ``tests/baselines/test_stats.py`` verifies empirically.

Statistics implemented: the two-sample Kolmogorov–Smirnov sup-distance
and the tie-adjusted two-sample Anderson–Darling statistic (Scholz &
Stephens 1987, the midrank ``A²akN`` form) — AD weights the tails the
KS distance underweights, which is what catches variance-only model
bugs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ks_statistic",
    "anderson_darling_statistic",
    "trajectory_ks_statistic",
    "permutation_pvalue",
    "MetricComparison",
    "compare_samples",
]


def ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample KS sup-distance, ties handled exactly.

    >>> round(ks_statistic(np.array([1, 2, 3]), np.array([1, 2, 3])), 6)
    0.0
    >>> ks_statistic(np.array([0, 0]), np.array([1, 1]))
    1.0
    """
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    if a.size == 0 or b.size == 0:
        raise ValueError("need non-empty samples")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def anderson_darling_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Anderson–Darling ``A²akN`` (midrank / tie-adjusted).

    Scholz & Stephens (1987) eq. 7 specialised to k = 2.  Larger means
    more divergent; the absolute scale is irrelevant here because
    p-values come from permutation, not from the asymptotic table.

    >>> a = np.arange(20.0); b = np.arange(20.0)
    >>> abs(anderson_darling_statistic(a, b)) < 1e-12
    True
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("need non-empty samples")
    pooled = np.concatenate([a, b])
    z, l_j = np.unique(pooled, return_counts=True)
    n_total = pooled.size
    if z.size == 1:
        return 0.0
    b_j = np.cumsum(l_j)
    b_aj = b_j - l_j / 2.0
    denom = b_aj * (n_total - b_aj) - n_total * l_j / 4.0
    # Guard the (first == last) degenerate bins where denom can hit 0.
    valid = denom > 0
    total = 0.0
    for sample in (a, b):
        m_j = np.searchsorted(np.sort(sample), z, side="right")
        l_ij = np.bincount(
            np.searchsorted(z, sample), minlength=z.size
        )
        m_aj = m_j - l_ij / 2.0
        num = (n_total * m_aj - sample.size * b_aj) ** 2
        inner = np.where(valid, (l_j / n_total) * num / np.where(valid, denom, 1.0), 0.0)
        total += inner.sum() / sample.size
    return float((n_total - 1) / n_total * total)


def trajectory_ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Sup over days of the per-day KS distance between trajectory sets.

    ``a`` and ``b`` are ``(replications, n_days)`` matrices — one row
    per replication.  Testing the whole trajectory with a single
    functional statistic keeps the oracle's multiple-testing budget at
    one test per cell instead of one per day; under the null the rows
    are exchangeable, so :func:`permutation_pvalue` applies unchanged
    (2-d shuffling permutes rows).

    >>> a = np.zeros((4, 3)); b = np.zeros((4, 3)); b[:, 2] = 1.0
    >>> trajectory_ks_statistic(a, b)
    1.0
    """
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    if a.shape[1] != b.shape[1]:
        raise ValueError("trajectories must cover the same days")
    return max(ks_statistic(a[:, d], b[:, d]) for d in range(a.shape[1]))


def permutation_pvalue(
    a: np.ndarray,
    b: np.ndarray,
    rng: np.random.Generator,
    statistic=ks_statistic,
    n_permutations: int = 200,
) -> tuple[float, float]:
    """``(observed statistic, permutation p-value)``.

    The pooled sample is relabelled ``n_permutations`` times; the
    p-value is ``(1 + #{perm ≥ observed}) / (1 + n_permutations)`` —
    never zero, and stochastically conservative under the null.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    observed = statistic(a, b)
    pooled = np.concatenate([a, b])
    m = len(a)  # rows for (replication, day) matrices, elements for 1-d
    hits = 0
    for _ in range(n_permutations):
        rng.shuffle(pooled)
        if statistic(pooled[:m], pooled[m:]) >= observed - 1e-12:
            hits += 1
    return observed, (1 + hits) / (1 + n_permutations)


@dataclass(frozen=True)
class MetricComparison:
    """One metric's two-sample comparison inside an oracle cell."""

    metric: str  # "final-size" | "prevalence"
    day: int | None
    ks: float
    ks_pvalue: float
    ad: float
    ad_pvalue: float
    threshold: float  # per-test level after Bonferroni
    detail: str = ""

    @property
    def reject(self) -> bool:
        return min(self.ks_pvalue, self.ad_pvalue) < self.threshold

    def format(self) -> str:
        where = f"{self.metric}" + (f" day {self.day}" if self.day is not None else "")
        line = (
            f"{where}: KS {self.ks:.3f} (p={self.ks_pvalue:.4f}), "
            f"AD {self.ad:.2f} (p={self.ad_pvalue:.4f}), "
            f"level {self.threshold:.2e}"
        )
        return line + (f" — {self.detail}" if self.detail else "")


def compare_samples(
    a: np.ndarray,
    b: np.ndarray,
    rng: np.random.Generator,
    *,
    metric: str,
    day: int | None = None,
    threshold: float,
    n_permutations: int = 200,
    detail: str = "",
) -> MetricComparison:
    """Run KS and AD permutation tests on one sample pair.

    ``threshold`` is the per-test rejection level; it already accounts
    for the KS/AD pair (the caller halves it), so the comparison
    rejects iff *either* p-value beats it.
    """
    ks, ks_p = permutation_pvalue(a, b, rng, statistic=ks_statistic,
                                  n_permutations=n_permutations)
    ad, ad_p = permutation_pvalue(a, b, rng, statistic=anderson_darling_statistic,
                                  n_permutations=n_permutations)
    return MetricComparison(
        metric=metric, day=day, ks=ks, ks_pvalue=ks_p, ad=ad, ad_pvalue=ad_p,
        threshold=threshold, detail=detail,
    )
