"""Critical-transmissibility heavy-tail sanity check.

Near-critical epidemics on random graphs have heavy-tailed outbreak
sizes: the critical Galton–Watson/random-graph picture (Clancy's
critical-window analysis, and classically Aldous 1997) predicts
``P(final size = s) ~ s^(−3/2)`` at criticality, vs. the exponential
tails of clearly sub- or super-critical regimes.  That shape is a
*qualitative* fingerprint no mean-field bug can fake: a simulator whose
per-edge coupling is wrong will generally sit off criticality at the
predicted ``r_c`` and lose the power law entirely.

This module locates the critical per-minute transmissibility of a
projected contact graph by bisecting the degree-biased mean offspring
number to 1, runs single-seed FastSIR replications there, and checks
the outbreak-size sample for heavy-tail behaviour: a Hill tail-exponent
estimate in the critical band plus super-Poissonian dispersion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.fastsir import run_fastsir
from repro.baselines.model import SEIRParams, edge_transmission_probability
from repro.baselines.projection import ContactGraph
from repro.util.histogram import fit_powerlaw_exponent
from repro.util.rng import RngFactory

__all__ = [
    "mean_offspring",
    "critical_transmissibility",
    "HeavyTailCheck",
    "heavy_tail_check",
]


def mean_offspring(contact: ContactGraph, params: SEIRParams) -> float:
    """Degree-biased mean offspring number R of one infection.

    A node reached *via an edge* (the size-biased way epidemics reach
    nodes) transmits along each of its other edges ``e`` independently
    with ``q_e = 1 − (1−r)^(w_e·I)``.  Averaging ``Σ_other q`` over all
    directed edges gives the branching-process mean whose unit root is
    the epidemic threshold on a configuration-model-like graph.
    """
    if contact.indices.size == 0:
        return 0.0
    q = edge_transmission_probability(
        contact.weights, params.transmissibility, days=params.infectious_days
    )
    # S_v = total transmission propensity of node v; an arrival via the
    # directed edge u→v leaves offspring S_v − q_{vu} (no back-infection
    # of the still-immune infector).
    src = np.repeat(np.arange(contact.n_persons, dtype=np.int64), contact.degrees)
    s_per_node = np.zeros(contact.n_persons, dtype=np.float64)
    np.add.at(s_per_node, src, q)
    offspring = s_per_node[contact.indices] - q
    return float(offspring.mean())


def critical_transmissibility(
    contact: ContactGraph,
    latent_days: int = 2,
    infectious_days: int = 4,
    tolerance: float = 1e-6,
) -> float:
    """Per-minute transmissibility where the mean offspring crosses 1.

    ``mean_offspring`` is strictly increasing in ``r`` (each ``q_e``
    is), so plain bisection converges; raises if the graph cannot reach
    criticality below ``r = 0.5`` (i.e. it is too sparse to percolate).
    ``tolerance`` is *relative* — R scales roughly linearly with ``r``
    near threshold, so a relative bracket keeps ``|R(r_c) − 1|`` at the
    same order regardless of how small the critical point is.
    """

    def r_of(r: float) -> float:
        return mean_offspring(
            contact, SEIRParams(r, latent_days, infectious_days)
        )

    lo, hi = 0.0, 0.5
    if r_of(hi) < 1.0:
        raise ValueError("graph is subcritical even at transmissibility 0.5")
    while hi - lo > tolerance * hi:
        mid = (lo + hi) / 2.0
        if r_of(mid) < 1.0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


@dataclass
class HeavyTailCheck:
    """Outcome of the critical heavy-tail fingerprint test."""

    critical_r: float
    mean_offspring: float
    final_sizes: np.ndarray
    dispersion: float
    tail_exponent: float
    exponent_band: tuple[float, float]
    min_dispersion: float

    @property
    def passed(self) -> bool:
        lo, hi = self.exponent_band
        return (
            lo <= self.tail_exponent <= hi
            and self.dispersion >= self.min_dispersion
        )

    def format(self) -> str:
        lo, hi = self.exponent_band
        return (
            f"critical r={self.critical_r:.6f} (R={self.mean_offspring:.3f}): "
            f"tail exponent {self.tail_exponent:.2f} "
            f"(band [{lo:.1f}, {hi:.1f}]), "
            f"dispersion {self.dispersion:.1f} (min {self.min_dispersion:.1f}) "
            f"-> {'ok' if self.passed else 'FAIL'}"
        )


def heavy_tail_check(
    contact: ContactGraph,
    *,
    rng_factory: RngFactory,
    latent_days: int = 2,
    infectious_days: int = 4,
    replications: int = 200,
    n_days: int = 60,
    xmin: float = 4.0,
    exponent_band: tuple[float, float] = (1.1, 3.2),
    min_dispersion: float = 3.0,
    salt: int = 7,
) -> HeavyTailCheck:
    """Run single-seed FastSIR at criticality and test the size tail.

    The exponent band is deliberately wide around the theoretical 3/2:
    finite populations, the bounded horizon and weighted edges all bend
    the pure Galton–Watson exponent, but exponential (subcritical) or
    bimodal (supercritical) size distributions land far outside it.
    Dispersion (variance/mean of final sizes) must also be strongly
    super-Poissonian — near-critical cascades mix many die-outs with
    rare large outbreaks.
    """
    r_c = critical_transmissibility(contact, latent_days, infectious_days)
    params = SEIRParams(r_c, latent_days, infectious_days)
    sizes = np.empty(replications, dtype=np.float64)
    for rep in range(replications):
        rng = rng_factory.stream(RngFactory.BASELINE, rep, salt)
        sizes[rep] = run_fastsir(contact, params, n_days, 1, rng).final_size
    mean = sizes.mean()
    dispersion = float(sizes.var() / mean) if mean > 0 else 0.0
    exponent = fit_powerlaw_exponent(sizes, xmin=xmin)
    return HeavyTailCheck(
        critical_r=r_c,
        mean_offspring=mean_offspring(contact, params),
        final_sizes=sizes,
        dispersion=dispersion,
        tail_exponent=exponent,
        exponent_band=exponent_band,
        min_dispersion=min_dispersion,
    )
