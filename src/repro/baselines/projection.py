"""Person–person contact graph projected from the visit graph.

The baselines (FastSIR, Dijkstra) operate on a classical contact
network: persons are vertices, and an undirected edge carries the total
*daily co-presence minutes* of the two endpoints.  Projection collapses
the person–location visit graph by enumerating every pair of visits
co-present in the same ``(location, sublocation)`` block with positive
interval overlap — the exact pair geometry the exposure kernels use
(:func:`repro.core.des.blocked_pairwise_exposures`) — and summing
overlap minutes per person pair.

Because hazards in the main model add across simultaneous contacts,
the daily probability that infectious *u* transmits to susceptible *v*
depends only on the summed overlap ``w(u, v)``:

    p(u→v) = 1 − (1 − r·ρ·σ)^w(u,v)

so the projection is lossless for SEIR-style models whose coefficients
don't vary within a day — the property the distribution-level oracle
(:mod:`repro.validate.external`) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.des import blocked_pairwise_exposures
from repro.synthpop.graph import PersonLocationGraph

__all__ = ["ContactGraph", "project_contact_graph"]


@dataclass
class ContactGraph:
    """Symmetric person–person contact network in CSR form.

    ``indices[indptr[p]:indptr[p+1]]`` are the neighbours of person
    ``p``; ``weights`` aligns with ``indices`` and holds co-presence
    minutes per day.  Every undirected edge is stored twice (u→v and
    v→u) with equal weight; there are no self-loops.
    """

    n_persons: int
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    name: str = "contact"
    _degree: np.ndarray | None = field(default=None, repr=False)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.indices.size) // 2

    @property
    def degrees(self) -> np.ndarray:
        """Contact-partner count per person."""
        if self._degree is None:
            self._degree = np.diff(self.indptr)
        return self._degree

    @property
    def total_weight(self) -> float:
        """Sum of undirected edge weights (co-presence minutes)."""
        return float(self.weights.sum()) / 2.0

    def neighbors(self, person: int) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbour_ids, weights)`` of one person."""
        lo, hi = int(self.indptr[person]), int(self.indptr[person + 1])
        return self.indices[lo:hi], self.weights[lo:hi]

    def edge_list(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Each undirected edge once as ``(u, v, w)`` with ``u < v``."""
        src = np.repeat(np.arange(self.n_persons, dtype=np.int64), self.degrees)
        keep = src < self.indices
        return src[keep], self.indices[keep].astype(np.int64), self.weights[keep]

    def validate(self) -> None:
        """Check the structural invariants; raise ``ValueError`` on breakage."""
        if self.indptr.shape[0] != self.n_persons + 1:
            raise ValueError("indptr length must be n_persons + 1")
        if self.indices.shape[0] != self.weights.shape[0]:
            raise ValueError("indices/weights length mismatch")
        if np.any(np.diff(self.indptr) < 0) or int(self.indptr[-1]) != self.indices.size:
            raise ValueError("indptr is not a valid CSR pointer")
        if self.indices.size == 0:
            return
        if self.indices.min() < 0 or self.indices.max() >= self.n_persons:
            raise ValueError("neighbour id out of range")
        if np.any(self.weights <= 0):
            raise ValueError("edge weights must be positive")
        src = np.repeat(np.arange(self.n_persons, dtype=np.int64), self.degrees)
        if np.any(src == self.indices):
            raise ValueError("self-loop present")
        # Symmetry: the multiset of (u, v, w) equals the multiset of
        # (v, u, w).  Adjacency lists are sorted by neighbour id, so a
        # canonical sort of both orientations must agree exactly.
        fwd = np.lexsort((self.indices, src))
        rev = np.lexsort((src, self.indices))
        if not (
            np.array_equal(src[fwd], self.indices[rev])
            and np.array_equal(self.indices[fwd], src[rev])
            and np.allclose(self.weights[fwd], self.weights[rev])
        ):
            raise ValueError("adjacency is not symmetric")


def project_contact_graph(graph: PersonLocationGraph) -> ContactGraph:
    """Project a visit graph onto its person–person contact network.

    Every ordered pair of distinct-person visits sharing a
    ``(location, sublocation)`` block with positive interval overlap
    contributes its overlap minutes to the pair's edge weight; multiple
    co-presences (same or different locations) accumulate.

    >>> from repro.synthpop import PopulationConfig, generate_population
    >>> g = generate_population(PopulationConfig(n_persons=50), 0)
    >>> c = project_contact_graph(g)
    >>> c.validate(); c.n_persons
    50
    """
    every = np.ones(graph.n_visits, dtype=bool)
    a_idx, b_idx, o_start, o_end = blocked_pairwise_exposures(
        graph.visit_location,
        graph.visit_subloc,
        graph.visit_start,
        graph.visit_end,
        every,
        every,
    )
    pu = graph.visit_person[a_idx].astype(np.int64)
    pv = graph.visit_person[b_idx].astype(np.int64)
    # All-True masks enumerate each co-present visit pair in both
    # orientations; keeping u < v keeps each exactly once and drops
    # same-person co-presence (a person cannot infect themself).
    keep = pu < pv
    pu, pv = pu[keep], pv[keep]
    overlap = (o_end[keep] - o_start[keep]).astype(np.float64)

    n = graph.n_persons
    if pu.size == 0:
        return ContactGraph(
            n_persons=n,
            indptr=np.zeros(n + 1, dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
            weights=np.empty(0, dtype=np.float64),
            name=f"{graph.name}-contact",
        )

    # Aggregate duplicate pairs, then mirror to a symmetric edge set.
    key = pu * n + pv
    uniq, inv = np.unique(key, return_inverse=True)
    w = np.bincount(inv, weights=overlap, minlength=uniq.size)
    eu, ev = uniq // n, uniq % n
    src = np.concatenate([eu, ev])
    dst = np.concatenate([ev, eu])
    ww = np.concatenate([w, w])
    order = np.lexsort((dst, src))
    src, dst, ww = src[order], dst[order], ww[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    return ContactGraph(
        n_persons=n,
        indptr=indptr,
        indices=dst,
        weights=ww,
        name=f"{graph.name}-contact",
    )
