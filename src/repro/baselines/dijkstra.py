"""Dijkstra transmission-time simulator (Zorzenon et al., arXiv:2010.02540).

The percolation view of the SEIR process: for each directed contact
edge ``u→v`` sample the delay ``K`` (in infectious days) until ``u``
would transmit — geometric with the edge's per-day probability — and
keep the edge iff ``K ≤ I`` (transmission must beat recovery).  A
node's infection day is then its shortest-path arrival time from the
index-case set with per-hop weight ``L + K − 1`` (latency, plus the
wait within the infector's infectious window).  Dijkstra over the kept
edges therefore *is* the epidemic: one run yields every node's
infection day, with no day loop at all.

Edge delays are sampled lazily when their source node is finalised —
each directed edge at most once, so complexity stays
O(E log V) regardless of horizon — and nodes past the horizon are
never expanded.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.baselines.model import (
    UNINFECTED,
    BaselineResult,
    SEIRParams,
    curve_from_infection_days,
    draw_index_cases,
    edge_transmission_probability,
)
from repro.baselines.projection import ContactGraph

__all__ = ["run_dijkstra"]


def run_dijkstra(
    contact: ContactGraph,
    params: SEIRParams,
    n_days: int,
    initial_infections: int | np.ndarray,
    rng: np.random.Generator,
) -> BaselineResult:
    """Run one Dijkstra replication; return its epidemic curve.

    Distributionally identical to :func:`repro.baselines.fastsir.run_fastsir`
    (the same independent-edge coupling, traversed shortest-path-first
    instead of day-by-day) and to the sequential reference running
    ``sir_model`` — which is exactly what the distribution oracle
    checks.

    >>> from repro.util.rng import RngFactory
    >>> two = ContactGraph(2, np.array([0, 1, 2]), np.array([1, 0]),
    ...                    np.array([600.0, 600.0]))
    >>> r = run_dijkstra(two, SEIRParams(0.5, 1, 2), 4, np.array([0]),
    ...                 RngFactory(0).stream(RngFactory.BASELINE, 0, 1))
    >>> r.final_size
    2
    """
    if n_days < 1:
        raise ValueError("n_days must be positive")
    n = contact.n_persons
    t_inf = np.full(n, UNINFECTED, dtype=np.int64)
    seeds = draw_index_cases(n, initial_infections, rng)
    t_inf[seeds] = -1
    L, I = params.latent_days, params.infectious_days

    # Min-heap of (infection_day, person); lazy deletion on pop.
    heap: list[tuple[int, int]] = [(-1, int(s)) for s in sorted(seeds)]
    heapq.heapify(heap)
    done = np.zeros(n, dtype=bool)
    while heap:
        t, u = heapq.heappop(heap)
        if done[u] or t > int(t_inf[u]):
            continue
        done[u] = True
        nbr, w = contact.neighbors(u)
        if nbr.size == 0:
            continue
        # Geometric delay per outgoing edge; kept iff within the
        # infectious window (transmission beats recovery).  Zero
        # -probability edges (r = 0) never transmit and draw nothing.
        p = edge_transmission_probability(w, params.transmissibility)
        live = p > 0.0
        if not live.any():
            continue
        nbr, p = nbr[live], p[live]
        k = rng.geometric(p)
        arrival = t + L + k - 1
        relax = (k <= I) & (arrival < n_days) & (arrival < t_inf[nbr])
        for v, tv in zip(nbr[relax], arrival[relax]):
            t_inf[v] = tv
            heapq.heappush(heap, (int(tv), int(v)))

    return curve_from_infection_days(t_inf, params, n_days)
