"""Independent fast-baseline simulators used as correctness oracles.

The differential oracle in :mod:`repro.validate.oracle` proves the
runtimes are *self-consistent* — every execution mode reproduces the
sequential reference bit-for-bit.  It cannot catch a bug baked into the
reference itself.  This package provides two independent rivals from
the epidemic-simulation literature, implemented from their papers
rather than from this repo's model code:

* :mod:`repro.baselines.fastsir` — the FastSIR algorithm
  (Antulov-Fantulin et al., arXiv:1202.1639): per infectious node, one
  draw per neighbour decides *whether and when* transmission happens
  over the whole infectious period, instead of one Bernoulli per
  contact per day;
* :mod:`repro.baselines.dijkstra` — the shortest-path transmission-time
  method (Zorzenon et al., arXiv:2010.02540): sample a geometric
  transmission delay per edge, keep edges whose delay beats the
  infectious period, and run Dijkstra from the index cases; a node's
  infection day is its shortest-path arrival time.

Both run on the person–person contact graph projected from the
person–location visit graph (:mod:`repro.baselines.projection`) with a
matched discrete-day SEIR parameterisation
(:mod:`repro.baselines.model`).  Because the main model's additive
hazards are probabilistically equivalent to independent per-contact
Bernoulli trials, both baselines are *distributionally* identical to
the sequential simulator running :func:`repro.core.disease.sir_model`
— which is exactly what :func:`repro.validate.external.run_external_oracle`
checks with KS/Anderson–Darling statistics over seeded replications.

:mod:`repro.baselines.critical` adds the Clancy-style heavy-tail sanity
check: near the critical transmissibility, outbreak sizes on a
heavy-tailed contact graph must follow a power law, not a bell curve.
"""

from repro.baselines.critical import (
    HeavyTailCheck,
    critical_transmissibility,
    heavy_tail_check,
    mean_offspring,
)
from repro.baselines.dijkstra import run_dijkstra
from repro.baselines.fastsir import run_fastsir
from repro.baselines.model import BaselineResult, SEIRParams, curve_from_infection_days
from repro.baselines.projection import ContactGraph, project_contact_graph
from repro.baselines.stats import (
    MetricComparison,
    anderson_darling_statistic,
    compare_samples,
    ks_statistic,
    permutation_pvalue,
    trajectory_ks_statistic,
)

__all__ = [
    "ContactGraph",
    "project_contact_graph",
    "SEIRParams",
    "BaselineResult",
    "curve_from_infection_days",
    "run_fastsir",
    "run_dijkstra",
    "ks_statistic",
    "anderson_darling_statistic",
    "trajectory_ks_statistic",
    "permutation_pvalue",
    "compare_samples",
    "MetricComparison",
    "mean_offspring",
    "critical_transmissibility",
    "heavy_tail_check",
    "HeavyTailCheck",
]
