"""Workload models (paper §III-A).

The paper's key enabler for graph partitioning is a *model* that maps
application state to per-vertex load:

* **person load** — proportional to the number of visit messages the
  person generates (low variance: 5.5 ± 2.6);
* **location load** — a piecewise-linear function of the number of
  arrive/depart events, blended by a sigmoid at the crossover point
  (the two linear regimes come from cache effects at small/large DES
  sizes on the XE6);
* **dynamic load** — depends on run-time quantities (interaction
  counts) and is *not* used for static partitioning.

This package implements the models with the paper's published
constants, a fitting procedure to re-derive constants from measured
timings (Figure 3a), and the multi-constraint vertex-weight assignment
consumed by the partitioner.
"""

from repro.loadmodel.static import PiecewiseLoadModel, PAPER_STATIC_MODEL
from repro.loadmodel.dynamic import DynamicLoadModel
from repro.loadmodel.fit import fit_piecewise_linear, FitReport
from repro.loadmodel.workload import (
    WorkloadModel,
    location_loads,
    person_loads,
    vertex_weight_matrix,
)

__all__ = [
    "PiecewiseLoadModel",
    "PAPER_STATIC_MODEL",
    "DynamicLoadModel",
    "fit_piecewise_linear",
    "FitReport",
    "WorkloadModel",
    "location_loads",
    "person_loads",
    "vertex_weight_matrix",
]
