"""The static location load model (paper §III-A).

The paper models a location's processing time from its event count X
with two linear regimes blended by a sigmoid:

    X′ = µ·X
    Y_a =  6.09×10⁻⁶ + 7.72×10⁻⁷ · X′
    Y_b = −1.25×10⁻⁴ + 8.67×10⁻⁷ · X′
    Y   = Y_a · S(ϕ − X′) + Y_b · S(X′ − ϕ),   S(t) = 1 / (1 + ρ·e^(−t))

Y_a captures small locations (per-event cost dominated by fixed
overheads), Y_b large ones (steeper slope — the DES working set falls
out of cache).  ϕ is the crossover, found experimentally; ρ adjusts the
smoothness of the hand-off.  µ rescales LocationManager-level
measurements down to single locations (the paper measures LMs because
of timer precision).

The paper validates this model at ~5% mean error on Blue Waters; our
Figure-3a bench refits the same functional form against measured DES
kernel timings on the host machine and reports the same statistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PiecewiseLoadModel", "PAPER_STATIC_MODEL"]


@dataclass(frozen=True)
class PiecewiseLoadModel:
    """Two-segment linear model with sigmoid blending.

    ``evaluate`` is vectorised over event counts and clamped to a small
    positive floor (a location with one visit still costs something).
    """

    intercept_a: float
    slope_a: float
    intercept_b: float
    slope_b: float
    crossover: float  # ϕ, in X′ units
    smoothness: float = 1.0  # ρ
    transition_width: float = 1.0  # τ: S evaluates at t/τ
    mu: float = 1.0  # µ input scaling

    def __post_init__(self) -> None:
        if self.crossover <= 0:
            raise ValueError("crossover must be positive")
        if self.transition_width <= 0 or self.smoothness <= 0:
            raise ValueError("smoothness/transition_width must be positive")

    def _sigmoid(self, t: np.ndarray) -> np.ndarray:
        z = np.clip(t / self.transition_width, -500.0, 500.0)
        return 1.0 / (1.0 + self.smoothness * np.exp(-z))

    def evaluate(self, events: np.ndarray | float) -> np.ndarray | float:
        """Load (seconds) for the given event count(s)."""
        scalar = np.isscalar(events)
        x = np.asarray(events, dtype=np.float64) * self.mu
        ya = self.intercept_a + self.slope_a * x
        yb = self.intercept_b + self.slope_b * x
        y = ya * self._sigmoid(self.crossover - x) + yb * self._sigmoid(x - self.crossover)
        y = np.maximum(y, 1e-9)
        return float(y) if scalar else y

    __call__ = evaluate


#: The paper's published constants.  The crossover ϕ was "determined
#: experimentally" and not printed; the two lines intersect where
#: Y_a = Y_b, i.e. X′ = (6.09e-6 + 1.25e-4) / (8.67e-7 − 7.72e-7) ≈ 1380
#: events, which we adopt (with a proportional transition width).
PAPER_STATIC_MODEL = PiecewiseLoadModel(
    intercept_a=6.09e-6,
    slope_a=7.72e-7,
    intercept_b=-1.25e-4,
    slope_b=8.67e-7,
    crossover=1380.0,
    smoothness=1.0,
    transition_width=138.0,
    mu=1.0,
)
