"""The dynamic location load model (paper §III-A, Figure 3b).

Two of the three model inputs the paper names — the *sum of
interactions* and the *sum of the reciprocal of interactions* — are
only available at run time, so this model cannot drive static
partitioning; the paper uses it to characterise the non-deterministic
load component (and flags dynamic balancing as future work, §VII).

We use it in the runtime simulator as the part of a location's compute
cost that static GP partitioning cannot see: the gap between GP's
predicted balance and achieved balance in the Figure-13 benches comes
from exactly this term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DynamicLoadModel"]


@dataclass(frozen=True)
class DynamicLoadModel:
    """Linear model over run-time DES statistics.

    ``load = c_events·events + c_inter·interactions + c_recip·Σ(1/i)``

    Default coefficients make the dynamic component a meaningful but
    minority share (~10–30%) of a busy location's cost, consistent with
    the paper's observation that the statically predictable part
    dominates.
    """

    c_events: float = 0.0
    c_interactions: float = 2.0e-7
    c_recip: float = 5.0e-8

    def evaluate(
        self,
        events: np.ndarray | float,
        interactions: np.ndarray | float,
        recip_interactions: np.ndarray | float = 0.0,
    ) -> np.ndarray | float:
        return (
            self.c_events * np.asarray(events, dtype=np.float64)
            + self.c_interactions * np.asarray(interactions, dtype=np.float64)
            + self.c_recip * np.asarray(recip_interactions, dtype=np.float64)
        )

    __call__ = evaluate
