"""Vertex-weight assignment for multi-constraint partitioning.

The paper partitions the bipartite person–location graph with METIS'
multi-constraint mode: each vertex carries a *vector* of weights, one
per balancing constraint, each constraint corresponding to one phase of
the computation (paper §III-A):

* constraint 0 — the **person phase**: person vertices weigh their
  message count (= visit degree); location vertices weigh 0;
* constraint 1 — the **location phase**: location vertices weigh their
  modelled static load; person vertices weigh 0.

Balancing both constraints simultaneously balances both phases, which
a single combined weight cannot do (a partition full of persons and a
partition full of locations could have equal totals yet idle
alternately).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.loadmodel.static import PAPER_STATIC_MODEL, PiecewiseLoadModel
from repro.synthpop.graph import PersonLocationGraph

__all__ = ["WorkloadModel", "person_loads", "location_loads", "vertex_weight_matrix"]


def person_loads(graph: PersonLocationGraph) -> np.ndarray:
    """Person-phase load: the number of visit messages each person sends.

    The paper approximates person load by message count because its
    variance is small (5.5 ± 2.6 for the US data).
    """
    return graph.person_degrees.astype(np.float64)


def location_loads(
    graph: PersonLocationGraph, model: PiecewiseLoadModel = PAPER_STATIC_MODEL
) -> np.ndarray:
    """Location-phase static load: the model applied to 2×visits events."""
    events = 2.0 * graph.location_visit_counts.astype(np.float64)
    return np.asarray(model.evaluate(events), dtype=np.float64)


@dataclass(frozen=True)
class WorkloadModel:
    """Bundles the static model plus integer-scaling for the partitioner.

    Graph partitioners want integer vertex weights; ``int_scale`` maps
    the continuous location loads onto integers with enough resolution
    that rounding noise stays below the balance tolerance.
    """

    static_model: PiecewiseLoadModel = PAPER_STATIC_MODEL
    int_scale: float = 1.0e6

    def person_weights(self, graph: PersonLocationGraph) -> np.ndarray:
        return np.maximum(1, person_loads(graph)).astype(np.int64)

    def location_weights(self, graph: PersonLocationGraph) -> np.ndarray:
        loads = location_loads(graph, self.static_model)
        return np.maximum(1, np.round(loads * self.int_scale)).astype(np.int64)


def vertex_weight_matrix(
    graph: PersonLocationGraph, workload: WorkloadModel | None = None
) -> np.ndarray:
    """The (n_persons + n_locations) × 2 multi-constraint weight matrix.

    Row layout matches the partitioner's bipartite vertex numbering:
    persons first (ids 0..n_persons-1), then locations
    (ids n_persons..n_persons+n_locations-1).
    """
    workload = workload or WorkloadModel()
    n, m = graph.n_persons, graph.n_locations
    w = np.zeros((n + m, 2), dtype=np.int64)
    w[:n, 0] = workload.person_weights(graph)
    w[n:, 1] = workload.location_weights(graph)
    return w
