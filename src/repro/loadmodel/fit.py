"""Fitting the piecewise-linear load model from measurements.

The paper builds its static model by "measuring LocationManagers'
processing time" and fitting a piecewise linear regression (Figure 3a,
~5% average error).  :func:`fit_piecewise_linear` reproduces that
procedure: a grid search over candidate crossover points, ordinary
least squares on each side, minimum total squared error wins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.loadmodel.static import PiecewiseLoadModel

__all__ = ["FitReport", "fit_piecewise_linear"]


@dataclass(frozen=True)
class FitReport:
    """Result of a load-model fit."""

    model: PiecewiseLoadModel
    mean_relative_error: float
    max_relative_error: float
    n_samples: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        m = self.model
        return (
            f"Ya = {m.intercept_a:.3e} + {m.slope_a:.3e}·X'\n"
            f"Yb = {m.intercept_b:.3e} + {m.slope_b:.3e}·X'\n"
            f"phi = {m.crossover:.1f}, mean rel. error = "
            f"{100 * self.mean_relative_error:.1f}% over {self.n_samples} samples"
        )


def _ols_line(x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
    """Relative-error weighted least squares (intercept, slope).

    Weighting each residual by 1/y makes the fit minimise *relative*
    error — the metric the paper reports (~5% average) — instead of
    letting the largest locations dominate the objective.
    """
    if x.size < 2 or np.ptp(x) == 0:
        return float(y.mean()), 0.0
    w = 1.0 / np.maximum(np.abs(y), np.abs(y).max() * 1e-9)
    sw = w.sum()
    mx = (w * x).sum() / sw
    my = (w * y).sum() / sw
    var = (w * (x - mx) ** 2).sum()
    if var == 0:
        return float(my), 0.0
    slope = (w * (x - mx) * (y - my)).sum() / var
    return float(my - slope * mx), float(slope)


def fit_piecewise_linear(
    events: np.ndarray,
    loads: np.ndarray,
    n_breakpoints: int = 64,
    mu: float = 1.0,
) -> FitReport:
    """Fit the two-segment model to measured ``(events, load)`` samples.

    Parameters
    ----------
    events:
        Event counts per measured work unit (X in the paper).
    loads:
        Measured processing times (Y), same length.
    n_breakpoints:
        Size of the crossover candidate grid (log-spaced over the
        observed X′ range).
    mu:
        Input scaling applied before fitting (the paper measures
        manager-level aggregates and scales by µ).
    """
    x = np.asarray(events, dtype=np.float64) * mu
    y = np.asarray(loads, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("events and loads must be equal-length 1-D arrays")
    if x.size < 4:
        raise ValueError("need at least 4 samples to fit a piecewise model")
    if np.any(y < 0):
        raise ValueError("negative load measurement")

    order = np.argsort(x)
    x, y = x[order], y[order]
    lo, hi = max(x[1], 1e-9), x[-2]
    if hi <= lo:
        candidates = np.array([x.mean()])
    else:
        candidates = np.geomspace(lo, hi, n_breakpoints)

    best = None
    for phi in candidates:
        left = x <= phi
        right = ~left
        if left.sum() < 2 or right.sum() < 2:
            continue
        ia, sa = _ols_line(x[left], y[left])
        ib, sb = _ols_line(x[right], y[right])
        pred = np.where(left, ia + sa * x, ib + sb * x)
        denom = np.maximum(np.abs(y), np.abs(y).max() * 1e-9)
        sse = float(np.sum(((pred - y) / denom) ** 2))
        if best is None or sse < best[0]:
            best = (sse, phi, ia, sa, ib, sb)
    if best is None:
        # Degenerate sample range: single line.
        ia, sa = _ols_line(x, y)
        best = (0.0, float(x.mean()), ia, sa, ia, sa)

    _, phi, ia, sa, ib, sb = best
    model = PiecewiseLoadModel(
        intercept_a=ia,
        slope_a=sa,
        intercept_b=ib,
        slope_b=sb,
        crossover=float(phi),
        transition_width=max(float(phi) / 10.0, 1e-9),
        mu=mu,
    )
    pred = model.evaluate(np.asarray(events, dtype=np.float64))
    denom = np.maximum(y, np.max(y) * 1e-6)
    rel = np.abs(pred - y) / denom
    return FitReport(
        model=model,
        mean_relative_error=float(rel.mean()),
        max_relative_error=float(rel.max()),
        n_samples=int(x.size),
    )
