"""repro — reproduction of "Overcoming the Scalability Challenges of
Epidemic Simulations on Blue Waters" (Yeom et al., IPDPS 2014).

An EpiSimdemics-style agent-based contagion simulator over synthetic
person–location graphs, together with everything the paper's evaluation
needs: a Charm++-like message-driven runtime *simulator*, a
multi-constraint multilevel graph partitioner, the heavy-node splitLoc
preprocessing, the §III-A workload models, and analysis/benchmark
harnesses regenerating every table and figure.

Quick start::

    from repro.synthpop import state_population
    from repro.core import Scenario, SequentialSimulator

    graph = state_population("IA", scale=1e-3, seed=0)
    result = SequentialSimulator(Scenario(graph=graph, n_days=90)).run()
    print(result.curve.attack_rate(graph.n_persons))

See README.md for the architecture tour, docs/architecture.md for the
package map and dataflow, docs/paper-map.md for the figure-by-figure
paper→module mapping, and docs/profiling.md for the observability
layer (``repro.observe`` / ``python -m repro profile``).
"""

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "charm",
    "core",
    "lab",
    "loadmodel",
    "observe",
    "partition",
    "spec",
    "synthpop",
    "util",
    "validate",
    "__version__",
]
