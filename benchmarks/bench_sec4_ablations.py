"""§IV ablations — each communication optimisation in isolation.

The figures for §IV-A/B/C are lost in the available text (see
EXPERIMENTS.md), so these benches reconstruct the experiments their
prose describes, plus the design-choice ablations DESIGN.md §6 lists:

* SMP mode on/off (§IV-A): dedicated comm threads vs per-core processes;
* completion detection vs quiescence detection (§IV-B): wave counts and
  sync cost;
* aggregation buffer sweep (§IV-C): 0 → 256 KiB;
* splitLoc threshold policy: the paper's rule vs fixed quantiles;
* multi-constraint vs single-constraint partitioning (§III-A).
"""

import numpy as np

from repro.charm.machine import Machine, MachineConfig
from repro.core import Scenario, TransmissionModel
from repro.core.parallel import Distribution, ParallelEpiSimdemics
from repro.loadmodel.workload import WorkloadModel, vertex_weight_matrix
from repro.partition import (
    imbalance,
    partition_bipartite,
    partition_loads,
    round_robin_partition,
    split_heavy_locations,
)
from repro.partition.csr import CSRGraph, bipartite_to_csr
from repro.partition.metis import MultilevelPartitioner
from repro.partition.quality import BipartitePartition

N_DAYS = 3


def _machine(smp: bool) -> MachineConfig:
    if smp:
        return MachineConfig(n_nodes=4, cores_per_node=16, smp=True, processes_per_node=2)
    return MachineConfig(n_nodes=4, cores_per_node=16, smp=False)


def _run(graph, mc, sync="cd", agg=64 * 1024):
    m = Machine(mc)
    sc = Scenario(
        graph=graph, n_days=N_DAYS, seed=9, initial_infections=10,
        transmission=TransmissionModel(2e-4),
    )
    dist = Distribution.from_partition(round_robin_partition(graph, m.n_pes), m)
    return ParallelEpiSimdemics(sc, mc, dist, sync=sync, aggregation_bytes=agg)


def test_ablation_smp_mode(benchmark, ia, report):
    graph = split_heavy_locations(ia, max_partitions=1024).graph

    def run():
        out = {}
        for smp in (False, True):
            sim = _run(graph, _machine(smp))
            res = sim.run()
            out[smp] = (res.time_per_day, Machine(_machine(smp)).n_pes)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    report("§IV-A — SMP mode ablation (RR, CD, 64 KiB aggregation)")
    report(f"{'mode':<10} {'PEs':>5} {'t/day (ms)':>11}")
    report(f"{'non-SMP':<10} {out[False][1]:>5} {out[False][0] * 1e3:>11.3f}")
    report(f"{'SMP':<10} {out[True][1]:>5} {out[True][0] * 1e3:>11.3f}")
    report("")
    report("SMP trades cores (comm threads) for interference-free compute")
    report("and per-message offload; with aggregation keeping message")
    report("counts low, the two layouts end up close — SMP must at least")
    report("be competitive despite running 12.5% fewer compute PEs.")
    t_flat, t_smp = out[False][0], out[True][0]
    assert t_smp < t_flat * 1.3, "SMP should be competitive with aggregation on"
    # Without aggregation both layouts degrade: non-SMP pays inline
    # per-message costs, SMP saturates its comm threads — the reason the
    # paper pairs SMP with aggregation rather than shipping it alone.
    t_flat0 = _run(graph, _machine(False), agg=0).run().time_per_day
    t_smp0 = _run(graph, _machine(True), agg=0).run().time_per_day
    report("")
    report(f"without aggregation: non-SMP {t_flat0 * 1e3:.3f} ms, SMP {t_smp0 * 1e3:.3f} ms")
    report("(both degrade; SMP comm threads saturate on per-visit messages)")
    assert t_flat0 > t_flat
    assert t_smp0 > t_smp


def test_ablation_cd_vs_qd(benchmark, ia, report):
    graph = split_heavy_locations(ia, max_partitions=1024).graph

    def run():
        out = {}
        for sync in ("cd", "qd"):
            sim = _run(graph, _machine(True), sync=sync)
            res = sim.run()
            waves = sim.visit_detector.waves_run + sim.infect_detector.waves_run
            out[sync] = (res.time_per_day, waves)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    report("§IV-B — completion detection vs quiescence detection")
    report(f"{'sync':<6} {'t/day (ms)':>11} {'waves (3 days)':>15}")
    for sync in ("cd", "qd"):
        report(f"{sync:<6} {out[sync][0] * 1e3:>11.3f} {out[sync][1]:>15}")
    assert out["qd"][1] > out["cd"][1]  # QD needs more waves
    assert out["cd"][0] <= out["qd"][0] * 1.001  # and is never cheaper to skip


def test_ablation_aggregation_buffer(benchmark, ia, report):
    graph = split_heavy_locations(ia, max_partitions=1024).graph
    buffers = [0, 1024, 8 * 1024, 64 * 1024, 256 * 1024]

    def run():
        out = {}
        for b in buffers:
            sim = _run(graph, _machine(True), agg=b)
            res = sim.run()
            out[b] = (res.time_per_day, sum(sim.runtime.msg_counter.values()))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    report("§IV-C — aggregation buffer sweep (SMP, CD)")
    report(f"{'buffer':>9} {'t/day (ms)':>11} {'wire msgs':>10}")
    for b in buffers:
        label = "off" if b == 0 else f"{b // 1024} KiB"
        report(f"{label:>9} {out[b][0] * 1e3:>11.3f} {out[b][1]:>10}")
    # Aggregation reduces messages monotonically and helps time overall.
    msgs = [out[b][1] for b in buffers]
    assert msgs[-1] < msgs[0]
    assert out[buffers[-1]][0] < out[0][0]


def test_ablation_tram_vs_direct(benchmark, ia, report):
    """Footnote 1: the application-aware direct aggregation vs a TRAM-like
    topological scheme.  TRAM needs far fewer buffers (≈2·sqrt(P) per PE
    instead of P) and keeps its aggregation ratio at scale, at the price
    of forwarding hops — at this modest PE count the direct scheme wins
    on latency while TRAM wins on buffer economy."""
    from repro.charm.tram import TramChannel

    graph = split_heavy_locations(ia, max_partitions=1024).graph
    mc = _machine(True)

    def run():
        out = {}
        for mode in ("direct", "tram"):
            m = Machine(mc)
            sc = Scenario(
                graph=graph, n_days=N_DAYS, seed=9, initial_infections=10,
                transmission=TransmissionModel(2e-4),
            )
            dist = Distribution.from_partition(
                round_robin_partition(graph, m.n_pes), m
            )
            sim = ParallelEpiSimdemics(sc, mc, dist, aggregation_bytes=8 * 1024)
            if mode == "tram":
                # Swap the visit channel for a TRAM channel post-hoc.
                sim.runtime.aggregators["visits"] = TramChannel(
                    "visits", m.n_pes, 8 * 1024
                )
            res = sim.run()
            chan = sim.runtime.aggregators["visits"]
            out[mode] = (
                res.time_per_day,
                chan.aggregation_ratio,
                sum(sim.runtime.msg_counter.values()),
                res.result.curve,
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    report("footnote 1 — direct (application-aware) vs TRAM-like aggregation")
    report(f"{'scheme':<8} {'t/day (ms)':>11} {'agg ratio':>10} {'wire msgs':>10}")
    for mode in ("direct", "tram"):
        t, ratio, msgs, _ = out[mode]
        report(f"{mode:<8} {t * 1e3:>11.3f} {ratio:>10.2f} {msgs:>10}")
    # Both deliver the identical epidemic.
    assert out["direct"][3] == out["tram"][3]
    # TRAM aggregates at least as well per wire message...
    assert out["tram"][1] >= 0.8 * out["direct"][1]
    # ...and stays within a reasonable factor on time at this scale.
    assert out["tram"][0] < 3.0 * out["direct"][0]


def test_ablation_split_threshold_policy(benchmark, ia, report):
    wl = WorkloadModel()

    def run():
        rows = []
        loads = wl.location_weights(ia).astype(float)
        # Paper rule vs fixed quantiles of the load distribution.
        policies = {"paper rule": None}
        for q in (0.999, 0.99, 0.9):
            policies[f"quantile {q}"] = float(
                np.quantile(ia.location_visit_counts, q)
            )
        for name, threshold in policies.items():
            if threshold is None:
                sr = split_heavy_locations(ia, max_partitions=256)
            else:
                sr = split_heavy_locations(ia, threshold=max(threshold, 1.0))
            loads2 = wl.location_weights(sr.graph).astype(float)
            rows.append(
                (
                    name,
                    sr.n_split,
                    sr.graph.n_locations / ia.n_locations - 1,
                    loads2.sum() / loads2.max(),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("splitLoc threshold policy ablation")
    report(f"{'policy':<15} {'n_split':>8} {'D growth':>9} {'Ltot/lmax':>10}")
    for name, n_split, growth, cap in rows:
        report(f"{name:<15} {n_split:>8} {growth:>8.1%} {cap:>10.1f}")
    report("")
    report("the paper rule hits a similar ceiling to aggressive quantile")
    report("splitting while touching far fewer locations")
    paper_cap = rows[0][3]
    aggressive = rows[-1]
    assert paper_cap > 0.3 * aggressive[3]
    assert rows[0][1] <= aggressive[1]


def test_ablation_multi_vs_single_constraint(benchmark, ia, report):
    k = 32

    def run():
        multi = partition_bipartite(ia, k)
        # Single-constraint: collapse the weight matrix to one column.
        csr = bipartite_to_csr(ia)
        single_vwgt = csr.vwgt.sum(axis=1, keepdims=True)
        csr1 = CSRGraph(csr.xadj, csr.adjncy, csr.adjwgt, single_vwgt)
        part = MultilevelPartitioner().kway(csr1, k)
        n = ia.n_persons
        single = BipartitePartition(part[:n].copy(), part[n:].copy(), k, "GP-1con")
        return multi, single

    multi, single = benchmark.pedantic(run, rounds=1, iterations=1)
    im_multi = imbalance(partition_loads(ia, multi))
    im_single = imbalance(partition_loads(ia, single))
    report("multi-constraint vs single-constraint partitioning (k=32)")
    report(f"{'constraints':<12} {'person imb':>11} {'location imb':>13} {'worst':>7}")
    report(f"{'two':<12} {im_multi[0]:>11.2f} {im_multi[1]:>13.2f} {im_multi.max():>7.2f}")
    report(f"{'one':<12} {im_single[0]:>11.2f} {im_single[1]:>13.2f} {im_single.max():>7.2f}")
    report("")
    report("one combined weight can balance totals while starving a phase;")
    report("two constraints bound the worse phase (paper §III-A)")
    assert im_multi.max() < im_single.max() * 1.2
