"""Per-component scenario overhead vs the plain-SIR baseline.

Each registered :mod:`repro.scenarios` entry runs on the sequential
simulator over the same synthetic population as a plain SIR scenario
with no components; the reported ``speedup`` is the plain-SIR wall
time divided by the scenario's (< 1 means the scenario costs more than
the bare model, as expected — richer PTTS graphs and extra day-phase
hooks).  The bench asserts every scenario stays within a generous
overhead budget so a regression in a component's day loop (e.g. an
accidental per-person Python loop over the whole population) fails CI.

Runs standalone (the CI smoke step) or under pytest:

    PYTHONPATH=src python benchmarks/bench_scenarios.py
    PYTHONPATH=src REPRO_BENCH_TINY=1 python benchmarks/bench_scenarios.py

``REPRO_BENCH_TINY=1`` shrinks the population to smoke-test scale and
skips the overhead assertion (shared CI runners make ratios unreliable
at millisecond run times); the runs themselves still execute.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from emit import emit_result  # noqa: E402

from repro.core import Scenario, TransmissionModel  # noqa: E402
from repro.core.disease import sir_model  # noqa: E402
from repro.core.simulator import SequentialSimulator  # noqa: E402
from repro.scenarios import build_scenario, names  # noqa: E402
from repro.spec import PopulationSpec  # noqa: E402

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")

N_PERSONS = 300 if TINY else 4_000
N_DAYS = 3 if TINY else 12
REPEATS = 1 if TINY else 3
SEED = 0
TRANSMISSIBILITY = 3e-4
#: Worst acceptable scenario cost relative to plain SIR (wall ratio).
MAX_OVERHEAD = 8.0


def time_run(scenario) -> tuple[float, int]:
    """Best-of-REPEATS wall time of a full sequential run."""
    best = float("inf")
    total = 0
    for _ in range(REPEATS):
        sim = SequentialSimulator(scenario)
        t0 = time.perf_counter()
        result = sim.run()
        best = min(best, time.perf_counter() - t0)
        total = result.total_infections
    return best, total


def main() -> int:
    graph = PopulationSpec(
        n_persons=N_PERSONS, seed=SEED, name="bench-scenarios"
    ).build()
    print(f"scenario overhead bench: {graph.n_persons:,} persons × "
          f"{N_DAYS} days, best of {REPEATS}{' [tiny]' if TINY else ''}")
    print()

    baseline = Scenario(
        graph=graph, disease=sir_model(), n_days=N_DAYS, seed=SEED,
        initial_infections=10, transmission=TransmissionModel(TRANSMISSIBILITY),
    )
    base_wall, base_total = time_run(baseline)

    walls = {"plain-sir": base_wall}
    ratios = {}
    totals = {"plain-sir": base_total}
    for name in names():
        sc = build_scenario(
            name, graph, n_days=N_DAYS, seed=SEED,
            transmissibility=TRANSMISSIBILITY,
        )
        walls[name], totals[name] = time_run(sc)
        ratios[name] = base_wall / walls[name]

    print(f"{'scenario':>20} {'time':>10} {'vs plain':>9} {'infections':>11}")
    for name, wall in walls.items():
        rel = base_wall / wall if wall else float("inf")
        print(f"{name:>20} {wall * 1e3:>8.1f}ms {rel:>8.2f}x {totals[name]:>11}")
    print()

    path = emit_result(
        "scenarios",
        params={
            "n_persons": graph.n_persons,
            "n_days": N_DAYS,
            "repeats": REPEATS,
            "tiny": TINY,
        },
        wall_seconds=walls,
        speedup=ratios,
    )
    print(f"wrote {path}")

    if not TINY:
        over = {
            n: walls[n] / base_wall
            for n in names() if walls[n] > base_wall * MAX_OVERHEAD
        }
        if over:
            print(f"FAIL: scenario overhead above {MAX_OVERHEAD}x plain SIR: "
                  + ", ".join(f"{n} ({r:.1f}x)" for n, r in over.items()))
            return 1
        print(f"all scenarios within {MAX_OVERHEAD}x of the plain-SIR baseline")
    return 0


def test_scenario_overhead():
    """Pytest entry point for the same measurement."""
    assert main() == 0


if __name__ == "__main__":
    raise SystemExit(main())
