"""Figure 14 — maximum per-partition edge cut (GP-splitLoc).

Paper: the max per-partition cut of GP-splitLoc partitions vs partition
count, compared against the all-remote-communication baseline
(total edges / partitions).  At the largest counts the ratio is 19x for
WY, 2.7x for NY, averaging 7.83x across the seven states — i.e. even a
good partitioner leaves the *worst* partition with several times the
average communication volume.
"""

import numpy as np

from repro.analysis.edgecut import edge_cut_sweep
from repro.partition.splitloc import split_heavy_locations

KS = [4, 16, 64, 256]


def test_fig14_max_partition_cut(benchmark, state_graphs, report):
    def sweep():
        out = {}
        for state, g in state_graphs.items():
            sr = split_heavy_locations(g, max_partitions=98304)
            out[state] = edge_cut_sweep(sr.graph, KS)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report("Figure 14 — max per-partition edge cut (GP-splitLoc)")
    report("k:  " + " ".join(f"{k:>9}" for k in KS))
    for state, pts in out.items():
        report(f"{state}: " + " ".join(f"{p.max_partition_cut:>9}" for p in pts))
    report("")
    report("ratio to all-remote baseline (total edges / k):")
    ratios_at_max = {}
    for state, pts in out.items():
        report(f"{state}: " + " ".join(f"{p.ratio:>9.2f}" for p in pts))
        ratios_at_max[state] = pts[-1].ratio
    mean_ratio = float(np.mean(list(ratios_at_max.values())))
    report("")
    report(f"mean ratio at k={KS[-1]}: {mean_ratio:.2f} "
           f"(paper: 7.83 average at its largest counts)")

    # Shape: the worst partition's cut exceeds the all-remote average at
    # the largest k for most states (the paper's §V point that total-cut
    # minimisation does not balance per-partition cut).
    above = sum(1 for r in ratios_at_max.values() if r > 1.0)
    assert above >= 5, f"only {above}/7 states show the hotspot effect"
    assert mean_ratio > 1.0
