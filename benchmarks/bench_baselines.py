"""Time-per-epidemic of the baseline simulators vs the full model.

The baselines exist as *oracles*, but they are also speed rivals: a
FastSIR run touches each edge of the ever-infected set once, so it
should beat the full six-step day loop (flat exposure kernel) by a wide
margin on the same epidemic.  This bench pins that ratio — if a
"fast" baseline ever drifts slower than the simulator it is supposed to
cross-check cheaply, the oracle's economics are broken and the JSON
shows it.

Measures, on the heavy-tailed preset:

* contact-graph projection (one-off preprocessing, reported separately),
* mean time per epidemic over seeded replications of FastSIR, Dijkstra
  and the sequential simulator with the flat kernel.

Results go to ``BENCH_baselines.json`` at the repo root via
:mod:`benchmarks.emit`.  Runs standalone or under pytest:

    PYTHONPATH=src python benchmarks/bench_baselines.py
    PYTHONPATH=src REPRO_BENCH_TINY=1 python benchmarks/bench_baselines.py

``REPRO_BENCH_TINY=1`` shrinks the population to smoke-test scale (and
skips the speed-ratio assertion, which needs full-size work per run).
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from emit import emit_result  # noqa: E402

from repro.baselines import SEIRParams, project_contact_graph, run_dijkstra, run_fastsir  # noqa: E402
from repro.core import Scenario, TransmissionModel  # noqa: E402
from repro.core.disease import sir_model  # noqa: E402
from repro.core.simulator import SequentialSimulator  # noqa: E402
from repro.spec import PopulationSpec  # noqa: E402
from repro.util.rng import RngFactory, derive_seed  # noqa: E402

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")

N_PERSONS = 400 if TINY else 8_000
N_LOCATIONS = 60 if TINY else 1_000
N_DAYS = 4 if TINY else 16
REPLICATIONS = 2 if TINY else 10
SEED = 11
TRANSMISSIBILITY = 1.0e-4
LATENT, INFECTIOUS = 2, 4
INDEX_CASES = 5
#: At full scale FastSIR must beat the flat-kernel day loop by at least
#: this factor per epidemic, or it is pointless as a cheap oracle.
MIN_FASTSIR_ADVANTAGE = 5.0


def main() -> int:
    graph = PopulationSpec(
        kind="preset", preset="heavy-tailed", n_persons=N_PERSONS,
        params={"n_locations": N_LOCATIONS},
    ).build()
    print(f"heavy-tailed preset: {graph.n_persons:,} persons, "
          f"{graph.n_visits:,} visits, {N_DAYS} days, "
          f"{REPLICATIONS} replications{' [tiny]' if TINY else ''}")

    t0 = time.perf_counter()
    contact = project_contact_graph(graph)
    projection_s = time.perf_counter() - t0
    contact.validate()
    print(f"  projection: {contact.n_edges:,} contact edges "
          f"in {projection_s * 1e3:.1f}ms")

    params = SEIRParams(TRANSMISSIBILITY, LATENT, INFECTIOUS)
    factory = RngFactory(SEED)

    walls: dict[str, float] = {"projection": projection_s}
    sizes: dict[str, float] = {}

    for label, runner in (("fastsir", run_fastsir), ("dijkstra", run_dijkstra)):
        t0 = time.perf_counter()
        total = 0
        for rep in range(REPLICATIONS):
            rng = factory.stream(RngFactory.BASELINE, rep, 0 if label == "fastsir" else 1)
            total += runner(contact, params, N_DAYS, INDEX_CASES, rng).final_size
        walls[label] = (time.perf_counter() - t0) / REPLICATIONS
        sizes[label] = total / REPLICATIONS
        print(f"  {label:<10} {walls[label] * 1e3:8.2f}ms/epidemic  "
              f"(mean final size {sizes[label]:.0f})")

    t0 = time.perf_counter()
    total = 0
    for rep in range(REPLICATIONS):
        scenario = Scenario(
            graph=graph,
            disease=sir_model(infectious_days=INFECTIOUS, latent_days=LATENT),
            transmission=TransmissionModel(TRANSMISSIBILITY),
            n_days=N_DAYS,
            initial_infections=INDEX_CASES,
            seed=derive_seed(SEED, RngFactory.BASELINE, rep, 2),
        )
        total += SequentialSimulator(scenario, kernel="flat").run().total_infections
    walls["flat-kernel"] = (time.perf_counter() - t0) / REPLICATIONS
    sizes["flat-kernel"] = total / REPLICATIONS
    print(f"  {'flat-kernel':<10} {walls['flat-kernel'] * 1e3:8.2f}ms/epidemic  "
          f"(mean final size {sizes['flat-kernel']:.0f})")

    speedup = {
        "fastsir_vs_flat": walls["flat-kernel"] / walls["fastsir"],
        "dijkstra_vs_flat": walls["flat-kernel"] / walls["dijkstra"],
    }
    print(f"speedup vs flat kernel: fastsir {speedup['fastsir_vs_flat']:.1f}x, "
          f"dijkstra {speedup['dijkstra_vs_flat']:.1f}x")

    path = emit_result(
        "baselines",
        params={
            "n_persons": graph.n_persons,
            "n_locations": N_LOCATIONS,
            "n_visits": graph.n_visits,
            "n_contact_edges": contact.n_edges,
            "n_days": N_DAYS,
            "replications": REPLICATIONS,
            "transmissibility": TRANSMISSIBILITY,
            "mean_final_size": {k: round(v, 1) for k, v in sizes.items()},
            "tiny": TINY,
        },
        wall_seconds=walls,
        speedup=speedup,
    )
    print(f"wrote {path}")

    if not TINY and speedup["fastsir_vs_flat"] < MIN_FASTSIR_ADVANTAGE:
        print(f"FAIL: fastsir only {speedup['fastsir_vs_flat']:.1f}x faster than "
              f"the flat kernel (expected >= {MIN_FASTSIR_ADVANTAGE}x)")
        return 1
    return 0


def test_baseline_speed():
    """Pytest entry point for the same measurement."""
    assert main() == 0


if __name__ == "__main__":
    raise SystemExit(main())
