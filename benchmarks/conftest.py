"""Benchmark fixtures: cached scaled state populations and result files.

Every bench regenerates one of the paper's tables/figures and writes
its series to ``benchmarks/results/<name>.txt`` (EXPERIMENTS.md indexes
these).  Population synthesis is cached on disk under
``benchmarks/_cache`` keyed by (state, scale, seed).

``REPRO_BENCH_SCALE`` multiplies every population scale (default 1.0);
raise it on a bigger machine to push the experiments closer to paper
scale.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.synthpop import load_population, save_population, state_population

BENCH_DIR = Path(__file__).parent
CACHE_DIR = BENCH_DIR / "_cache"
RESULTS_DIR = BENCH_DIR / "results"

#: Baseline per-state scales: big states scaled harder so every bench
#: finishes in CI-friendly time while preserving the size ordering
#: CA > NY > MI > NC > IA > AR > WY.
STATE_SCALES = {
    "CA": 4e-4,
    "NY": 4e-4,
    "MI": 6e-4,
    "NC": 6e-4,
    "IA": 1.2e-3,
    "AR": 1.2e-3,
    "WY": 3e-3,
}

SCALE_MULT = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
SEED = 1


def _load_state(state: str) -> "PersonLocationGraph":
    scale = STATE_SCALES[state] * SCALE_MULT
    CACHE_DIR.mkdir(exist_ok=True)
    cache = CACHE_DIR / f"{state}_{scale:g}_{SEED}.npz"
    if cache.exists():
        return load_population(cache)
    g = state_population(state, scale=scale, seed=SEED)
    save_population(g, cache)
    return g


@pytest.fixture(scope="session")
def state_graphs():
    """The seven Table-I states at bench scale."""
    return {s: _load_state(s) for s in STATE_SCALES}


@pytest.fixture(scope="session")
def wy():
    return _load_state("WY")


@pytest.fixture(scope="session")
def ia():
    return _load_state("IA")


@pytest.fixture(scope="session")
def ca():
    return _load_state("CA")


@pytest.fixture()
def report(request):
    """Collects lines and writes them to results/<test-name>.txt."""
    lines: list[str] = []

    class Reporter:
        def __call__(self, text: str = "") -> None:
            lines.append(str(text))

        def table(self, rows, header=None) -> None:
            if header:
                self(header)
            for row in rows:
                self(row)

    rep = Reporter()
    yield rep
    RESULTS_DIR.mkdir(exist_ok=True)
    name = request.node.name.replace("[", "_").replace("]", "")
    out = RESULTS_DIR / f"{name}.txt"
    out.write_text("\n".join(lines) + "\n")
    print(f"\n[{name}] -> {out}")
    print("\n".join(lines))
