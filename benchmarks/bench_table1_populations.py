"""Table I — population data for the seven states (+ scaled US ratios).

Paper: visits / people / locations for populations derived from the
2009 American Community Survey.  We regenerate the table at bench
scale and verify the two structural ratios the whole paper rests on:
visits/person ≈ 5.5 and visits/location ≈ 21.5 (state-dependent).
"""

from repro.synthpop.states import STATE_PRESETS


def test_table1(benchmark, state_graphs, report):
    def build():
        rows = {}
        for state, g in state_graphs.items():
            rows[state] = g.summary()
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    report("Table I (scaled reproduction)")
    report(f"{'state':>6} {'visits':>10} {'people':>9} {'locations':>10} "
           f"{'v/p (paper)':>12} {'v/l (paper)':>12}")
    for state in ("CA", "NY", "MI", "NC", "IA", "AR", "WY"):
        s = rows[state]
        preset = STATE_PRESETS[state]
        report(
            f"{state:>6} {s['visits']:>10} {s['people']:>9} {s['locations']:>10} "
            f"{s['person_degree_mean']:>5.2f} ({preset.visits_per_person:.2f}) "
            f"{s['location_degree_mean']:>5.1f} ({preset.visits_per_location:.1f})"
        )
    for state in ("CA", "NY", "MI", "NC", "IA", "AR", "WY"):
        s = rows[state]
        preset = STATE_PRESETS[state]
        assert abs(s["person_degree_mean"] - preset.visits_per_person) < 0.5
        assert abs(s["location_degree_mean"] - preset.visits_per_location) / preset.visits_per_location < 0.25
