"""Figure 4 — upper-bound speedup vs number of partitions (GP).

Paper: S_ub = L_tot/L_max of GP partitions, evaluated for seven states
over 12–196,608 partitions; curves rise then saturate at L_tot/l_max,
and larger states saturate higher.  We regenerate with the real
multilevel partitioner at small k and the LPT balance bound at large k
(labelled), which is where GP saturates anyway.
"""

import numpy as np

from repro.analysis.speedup import speedup_bound_curve
from repro.loadmodel.workload import WorkloadModel

GP_KS = [2, 4, 12, 48, 192]
LPT_KS = [768, 3072, 12288, 49152, 196608]


def test_fig4_speedup_bound(benchmark, state_graphs, report):
    def sweep():
        out = {}
        for state, g in state_graphs.items():
            gp = speedup_bound_curve(g, GP_KS, method="gp")
            lpt = speedup_bound_curve(g, LPT_KS, method="lpt")
            out[state] = {**gp, **lpt}
        return out

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)

    ks = GP_KS + LPT_KS
    report("Figure 4 — upper bound on estimated speedup (GP / GP~LPT)")
    report("k: " + " ".join(f"{k:>8}" for k in ks))
    for state, curve in curves.items():
        report(f"{state}: " + " ".join(f"{curve[k]:>8.1f}" for k in ks))
    report("")
    report("(k <= 192 uses the multilevel partitioner; larger k uses the")
    report(" LPT balance bound, which GP saturates to)")

    wl = WorkloadModel()
    for state, curve in curves.items():
        g = state_graphs[state]
        loads = wl.location_weights(g).astype(float)
        cap = loads.sum() / loads.max()
        values = [curve[k] for k in ks]
        # Curves rise then saturate at the l_max cap — the paper's shape.
        # (Our bench-scale graphs saturate within tens of partitions; the
        # paper's full-size states within thousands.)
        assert values[-1] <= cap * 1.01
        assert values[-1] >= 0.6 * cap
        assert values[0] < values[-1]
    # The size→scalability trend across states is asserted in the
    # Figure-5 bench, where all 49 states share one scale factor; here
    # the per-state bench scales differ, so cross-state comparison of
    # absolute saturation levels is not meaningful.
