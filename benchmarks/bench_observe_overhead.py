"""Observability overhead guard — tracing off must cost < 3%.

Every instrumentation site in the pipeline (``observe.span`` /
``observe.traced`` / ``observe.counter``) pays one module-global read
when no observer is installed, returning a shared no-op handle.  This
bench pins that contract end to end:

1. run a representative workload (sequential simulator, the hottest
   instrumented path: one ``sim.day`` + one ``exposure.compute`` span
   per day) **with tracing enabled** to count exactly how many
   instrumentation calls the workload makes;
2. microbenchmark the **disabled** per-call cost of each primitive
   (span enter/exit, traced-decorator dispatch, counter);
3. assert ``calls x disabled-per-call-cost < 3%`` of the measured
   untraced workload wall time.

The estimate is deliberately conservative: it charges every site the
full context-manager price.  A direct A/B against *uninstrumented*
code is impossible at runtime (the sites are compiled in), but the
product of call count and per-call cost bounds the slowdown from
above — on this workload it lands around 0.01%, three orders of
magnitude under the ceiling.

Runs standalone (the CI smoke step) or under pytest:

    PYTHONPATH=src python benchmarks/bench_observe_overhead.py
    PYTHONPATH=src REPRO_BENCH_TINY=1 python benchmarks/bench_observe_overhead.py

``REPRO_BENCH_TINY=1`` shrinks the workload to smoke-test scale; the
overhead assertion still runs (the margin is large enough to be robust
on shared CI runners).
"""

from __future__ import annotations

import os
import time

from repro import observe
from repro.core import Scenario, SequentialSimulator, TransmissionModel
from repro.spec import PopulationSpec

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")

N_PERSONS = 300 if TINY else 4_000
N_DAYS = 3 if TINY else 12
REPEATS = 2 if TINY else 3
MICRO_ITERS = 20_000 if TINY else 200_000
MAX_OVERHEAD = 0.03


def build_scenario() -> Scenario:
    graph = PopulationSpec(
        n_persons=N_PERSONS, seed=0, name=f"bench-observe-{N_PERSONS}"
    ).build()
    return Scenario(
        graph=graph, n_days=N_DAYS, seed=0, initial_infections=5,
        transmission=TransmissionModel(2e-4),
    )


def run_workload(sc: Scenario) -> float:
    """Best-of-REPEATS untraced wall time for the full simulator run."""
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        SequentialSimulator(sc).run()
        best = min(best, time.perf_counter() - t0)
    return best


def count_instrumentation_calls(sc: Scenario) -> int:
    """How many spans the workload records when tracing is on."""
    with observe.observing() as obs:
        SequentialSimulator(sc).run()
    return len(obs.closed_spans()) + len(obs.counter_samples)


def disabled_span_cost() -> float:
    """Per-call seconds of ``with observe.span(...)`` while disabled."""
    assert not observe.enabled()
    span = observe.span
    t0 = time.perf_counter()
    for _ in range(MICRO_ITERS):
        with span("bench.noop", day=0):
            pass
    return (time.perf_counter() - t0) / MICRO_ITERS


def disabled_traced_cost() -> float:
    """Per-call *added* seconds of the traced decorator while disabled."""

    def plain(x):
        return x

    decorated = observe.traced("bench.noop")(plain)
    t0 = time.perf_counter()
    for _ in range(MICRO_ITERS):
        plain(1)
    base = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(MICRO_ITERS):
        decorated(1)
    deco = time.perf_counter() - t0
    return max(0.0, deco - base) / MICRO_ITERS


def main() -> int:
    sc = build_scenario()
    print(f"workload: {N_PERSONS:,} persons, {N_DAYS} days, best of {REPEATS}"
          f"{' [tiny]' if TINY else ''}")

    n_calls = count_instrumentation_calls(sc)
    workload = run_workload(sc)
    per_span = disabled_span_cost()
    per_traced = disabled_traced_cost()
    per_call = max(per_span, per_traced)
    est = n_calls * per_call
    frac = est / workload if workload > 0 else 0.0

    print(f"instrumentation calls per run : {n_calls}")
    print(f"untraced workload time        : {workload * 1e3:.1f} ms")
    print(f"disabled span cost            : {per_span * 1e9:.0f} ns/call")
    print(f"disabled traced-deco cost     : {per_traced * 1e9:.0f} ns/call")
    print(f"estimated disabled overhead   : {est * 1e6:.1f} us "
          f"({frac * 100:.4f}% of workload)")

    if frac >= MAX_OVERHEAD:
        print(f"FAIL: disabled-tracing overhead {frac:.2%} >= {MAX_OVERHEAD:.0%}")
        return 1
    print(f"ok: disabled-tracing overhead {frac:.4%} < {MAX_OVERHEAD:.0%}")
    return 0


def test_observe_overhead():
    """Pytest entry point for the same measurement."""
    assert main() == 0


if __name__ == "__main__":
    raise SystemExit(main())
