"""Exposure-kernel rewrite — grouped (reference) vs flat (batched).

The flat kernel replaces the per-location ``np.split`` Python loop and
the per-person keyed ``Generator`` constructions with one global
blocked pass and a single batched keyed-uniform draw.  This bench
times both kernels on a heavy-tailed synthetic population — the
splitLoc-motivating regime where one location absorbs a large share of
all visits and the grouped kernel's per-location overhead hurts most —
and asserts (i) the two kernels produce bit-identical infection
events and (ii) the flat kernel is at least 5× faster at default scale.

Runs standalone (the CI smoke step) or under pytest:

    PYTHONPATH=src python benchmarks/bench_exposure_kernel.py
    PYTHONPATH=src REPRO_BENCH_TINY=1 python benchmarks/bench_exposure_kernel.py

``REPRO_BENCH_TINY=1`` shrinks the population to smoke-test scale and
skips the speedup assertion (shared CI runners make timing ratios
unreliable at sub-millisecond kernel times); correctness is still
asserted exactly.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from emit import emit_result  # noqa: E402

from repro.core import Scenario, TransmissionModel  # noqa: E402
from repro.core.exposure import KERNELS, compute_infections  # noqa: E402
from repro.spec import PopulationSpec  # noqa: E402
from repro.synthpop.graph import PersonLocationGraph  # noqa: E402
from repro.util.rng import RngFactory  # noqa: E402

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")

#: Default preset: ~8k persons, ~24k visits, Zipf-distributed location
#: popularity so the top location sees thousands of co-present visits.
N_PERSONS = 400 if TINY else 8_000
N_LOCATIONS = 60 if TINY else 1_200
VISITS_PER_PERSON = 3
N_DAYS = 2 if TINY else 4
REPEATS = 1 if TINY else 3
MIN_SPEEDUP = 5.0


def build_heavy_tailed_graph(
    n_persons: int = N_PERSONS,
    n_locations: int = N_LOCATIONS,
    seed: int = 7,
) -> PersonLocationGraph:
    """Synthetic population with Zipf(1.4) location popularity.

    Built through :class:`repro.spec.PopulationSpec` — the one shared
    preset path (smp scaling bench, differential oracle, lab cache);
    this wrapper keeps the bench's historical entry point and sizes.
    """
    return PopulationSpec(
        kind="preset", preset="heavy-tailed", n_persons=n_persons, seed=seed,
        params={"n_locations": n_locations,
                "visits_per_person": VISITS_PER_PERSON},
    ).build()


def _phase_state(graph, seed=3, infected_frac=0.08):
    sc = Scenario(
        graph=graph, seed=seed, initial_infections=0,
        transmission=TransmissionModel(3e-4),
    )
    d = sc.disease
    state, _ = d.initial_health(graph.n_persons)
    rng = np.random.default_rng(seed)
    sick = rng.choice(graph.n_persons, int(graph.n_persons * infected_frac), replace=False)
    state[sick] = int(np.flatnonzero(d.is_infectious)[0])
    return sc, state


def time_kernel(kernel: str, graph, sc, state) -> tuple[float, list]:
    """Best-of-REPEATS wall time for N_DAYS location phases."""
    rows = np.arange(graph.n_visits, dtype=np.int64)
    f = RngFactory(sc.seed)
    best = float("inf")
    infections = None
    for _ in range(REPEATS):
        events = []
        t0 = time.perf_counter()
        for day in range(N_DAYS):
            res = compute_infections(
                rows, graph, state, sc.disease, sc.transmission, day, f,
                kernel=kernel,
            )
            events.extend((day, e.person, e.location, e.minute) for e in res.infections)
        best = min(best, time.perf_counter() - t0)
        infections = events
    return best, infections


def main() -> int:
    graph = build_heavy_tailed_graph()
    sc, state = _phase_state(graph)
    top = int(np.bincount(graph.visit_location, minlength=graph.n_locations).max())
    print(f"heavy-tailed preset: {graph.n_persons:,} persons, "
          f"{graph.n_visits:,} visits, {graph.n_locations:,} locations "
          f"(top location: {top:,} visits){' [tiny]' if TINY else ''}")
    print(f"{N_DAYS} location phases per run, best of {REPEATS}")
    print()

    times, results = {}, {}
    for kernel in KERNELS:
        times[kernel], results[kernel] = time_kernel(kernel, graph, sc, state)

    speedup = times["grouped"] / times["flat"] if times["flat"] > 0 else float("inf")
    print(f"{'kernel':>9} {'time':>10} {'infections':>11}")
    for kernel in KERNELS:
        print(f"{kernel:>9} {times[kernel] * 1e3:>8.1f}ms {len(results[kernel]):>11}")
    print()
    print(f"speedup (grouped/flat): {speedup:.1f}x")

    path = emit_result(
        "exposure_kernel",
        params={
            "n_persons": graph.n_persons,
            "n_locations": graph.n_locations,
            "n_visits": graph.n_visits,
            "n_days": N_DAYS,
            "repeats": REPEATS,
            "tiny": TINY,
        },
        wall_seconds={k: times[k] for k in KERNELS},
        speedup={"flat_vs_grouped": speedup},
    )
    print(f"wrote {path}")

    if results["flat"] != results["grouped"]:
        print("FAIL: kernels disagree on infection events")
        return 1
    print("oracle: infection events bit-identical across kernels")
    if not TINY and speedup < MIN_SPEEDUP:
        print(f"FAIL: expected >= {MIN_SPEEDUP}x speedup, got {speedup:.1f}x")
        return 1
    return 0


def test_flat_kernel_speedup():
    """Pytest entry point for the same measurement."""
    assert main() == 0


if __name__ == "__main__":
    raise SystemExit(main())
