"""Exposure-kernel rewrite — grouped (reference) vs flat (batched).

The flat kernel replaces the per-location ``np.split`` Python loop and
the per-person keyed ``Generator`` constructions with one global
blocked pass and a single batched keyed-uniform draw.  This bench
times both kernels on a heavy-tailed synthetic population — the
splitLoc-motivating regime where one location absorbs a large share of
all visits and the grouped kernel's per-location overhead hurts most —
and asserts (i) the two kernels produce bit-identical infection
events and (ii) the flat kernel is at least 5× faster at default scale.

Runs standalone (the CI smoke step) or under pytest:

    PYTHONPATH=src python benchmarks/bench_exposure_kernel.py
    PYTHONPATH=src REPRO_BENCH_TINY=1 python benchmarks/bench_exposure_kernel.py

``REPRO_BENCH_TINY=1`` shrinks the population to smoke-test scale and
skips the speedup assertion (shared CI runners make timing ratios
unreliable at sub-millisecond kernel times); correctness is still
asserted exactly.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import Scenario, TransmissionModel
from repro.core.exposure import KERNELS, compute_infections
from repro.synthpop.graph import MINUTES_PER_DAY, PersonLocationGraph
from repro.util.rng import RngFactory

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")

#: Default preset: ~8k persons, ~24k visits, Zipf-distributed location
#: popularity so the top location sees thousands of co-present visits.
N_PERSONS = 400 if TINY else 8_000
N_LOCATIONS = 60 if TINY else 1_200
VISITS_PER_PERSON = 3
N_DAYS = 2 if TINY else 4
REPEATS = 1 if TINY else 3
MIN_SPEEDUP = 5.0


def build_heavy_tailed_graph(
    n_persons: int = N_PERSONS,
    n_locations: int = N_LOCATIONS,
    seed: int = 7,
) -> PersonLocationGraph:
    """Synthetic population with Zipf(1.4) location popularity."""
    rng = np.random.default_rng(seed)
    n_visits = n_persons * VISITS_PER_PERSON
    ranks = np.arange(1, n_locations + 1, dtype=np.float64)
    popularity = ranks ** -1.4
    popularity /= popularity.sum()
    person = np.repeat(np.arange(n_persons, dtype=np.int64), VISITS_PER_PERSON)
    location = rng.choice(n_locations, size=n_visits, p=popularity).astype(np.int64)
    # Sublocation count grows with popularity (big venues have many
    # rooms, paper §III-C) — the regime where the grouped kernel's
    # full-cross-product-then-mask pays for pairs the flat kernel's
    # blocked enumeration never materialises.
    n_sublocs = np.clip(popularity * n_visits / 40.0, 1, 64).astype(np.int64)
    subloc = (rng.integers(0, 1 << 30, n_visits) % n_sublocs[location]).astype(np.int64)
    start = rng.integers(0, MINUTES_PER_DAY - 60, n_visits).astype(np.int64)
    end = start + rng.integers(30, MINUTES_PER_DAY // 3, n_visits)
    end = np.minimum(end, MINUTES_PER_DAY).astype(np.int64)
    order = np.lexsort((start, person))
    g = PersonLocationGraph(
        name=f"bench-heavy-{n_persons}",
        n_persons=n_persons,
        n_locations=n_locations,
        visit_person=person[order],
        visit_location=location[order],
        visit_subloc=subloc[order],
        visit_start=start[order],
        visit_end=end[order],
        location_n_sublocs=n_sublocs,
        location_type=np.zeros(n_locations, dtype=np.int64),
        person_age=rng.integers(1, 90, n_persons).astype(np.int64),
        person_home=rng.integers(0, n_locations, n_persons).astype(np.int64),
    )
    g.validate()
    return g


def _phase_state(graph, seed=3, infected_frac=0.08):
    sc = Scenario(
        graph=graph, seed=seed, initial_infections=0,
        transmission=TransmissionModel(3e-4),
    )
    d = sc.disease
    state, _ = d.initial_health(graph.n_persons)
    rng = np.random.default_rng(seed)
    sick = rng.choice(graph.n_persons, int(graph.n_persons * infected_frac), replace=False)
    state[sick] = int(np.flatnonzero(d.is_infectious)[0])
    return sc, state


def time_kernel(kernel: str, graph, sc, state) -> tuple[float, list]:
    """Best-of-REPEATS wall time for N_DAYS location phases."""
    rows = np.arange(graph.n_visits, dtype=np.int64)
    f = RngFactory(sc.seed)
    best = float("inf")
    infections = None
    for _ in range(REPEATS):
        events = []
        t0 = time.perf_counter()
        for day in range(N_DAYS):
            res = compute_infections(
                rows, graph, state, sc.disease, sc.transmission, day, f,
                kernel=kernel,
            )
            events.extend((day, e.person, e.location, e.minute) for e in res.infections)
        best = min(best, time.perf_counter() - t0)
        infections = events
    return best, infections


def main() -> int:
    graph = build_heavy_tailed_graph()
    sc, state = _phase_state(graph)
    top = int(np.bincount(graph.visit_location, minlength=graph.n_locations).max())
    print(f"heavy-tailed preset: {graph.n_persons:,} persons, "
          f"{graph.n_visits:,} visits, {graph.n_locations:,} locations "
          f"(top location: {top:,} visits){' [tiny]' if TINY else ''}")
    print(f"{N_DAYS} location phases per run, best of {REPEATS}")
    print()

    times, results = {}, {}
    for kernel in KERNELS:
        times[kernel], results[kernel] = time_kernel(kernel, graph, sc, state)

    speedup = times["grouped"] / times["flat"] if times["flat"] > 0 else float("inf")
    print(f"{'kernel':>9} {'time':>10} {'infections':>11}")
    for kernel in KERNELS:
        print(f"{kernel:>9} {times[kernel] * 1e3:>8.1f}ms {len(results[kernel]):>11}")
    print()
    print(f"speedup (grouped/flat): {speedup:.1f}x")

    if results["flat"] != results["grouped"]:
        print("FAIL: kernels disagree on infection events")
        return 1
    print("oracle: infection events bit-identical across kernels")
    if not TINY and speedup < MIN_SPEEDUP:
        print(f"FAIL: expected >= {MIN_SPEEDUP}x speedup, got {speedup:.1f}x")
        return 1
    return 0


def test_flat_kernel_speedup():
    """Pytest entry point for the same measurement."""
    assert main() == 0


if __name__ == "__main__":
    raise SystemExit(main())
