"""§I headline — US-scale speedup and efficiency.

Paper: EpiSimdemics reaches a speedup of 14,357 on 64K cores (22%
efficiency) and 58,649 on 360,448 cores (16.3% efficiency) on the US
population (280M people, 1.54B visits).

Reproduction at 1/1000 data scale: the US graph shrinks to 280K people
/ 1.5M visits, so the matching operating points keep *work per core*
constant — 64 and 360 core-modules stand in for 64K and 360K.  The
claims to reproduce are (i) double-digit efficiency at the scaled
operating points with GP-splitLoc, (ii) efficiency *declines slowly*
between the two points (the paper's 22% → 16.3%), and (iii) without
splitLoc the large point is impossible (speedup capped at L_tot/l_max).
"""

import numpy as np

from repro.analysis.scaling import PhaseCostModel, strong_scaling_curve
from repro.analysis.speedup import lpt_location_partition
from repro.loadmodel.workload import WorkloadModel
from repro.partition import round_robin_partition, split_heavy_locations
from repro.partition.quality import BipartitePartition
from repro.synthpop import load_population, save_population, state_population

from .conftest import CACHE_DIR

CORES = [1, 64, 360, 1440]  # 1/1000 of {64K, 360K, 1.44M}


def _us_graph():
    CACHE_DIR.mkdir(exist_ok=True)
    cache = CACHE_DIR / "US_0.001_1.npz"
    if cache.exists():
        return load_population(cache)
    g = state_population("US", scale=1e-3, seed=1)
    save_population(g, cache)
    return g


def _lpt_provider(graph):
    loads = WorkloadModel().location_weights(graph).astype(float)

    def provider(n_pes):
        return BipartitePartition(
            person_part=np.arange(graph.n_persons, dtype=np.int64) % n_pes,
            location_part=lpt_location_partition(loads, n_pes),
            k=n_pes,
            method="GP~",
        )

    return provider


def test_headline_us_scaling(benchmark, report):
    model = PhaseCostModel()

    def sweep():
        g = _us_graph()
        sr = split_heavy_locations(g, max_partitions=360_448)
        with_split = strong_scaling_curve(
            sr.graph, _lpt_provider(sr.graph), CORES, model
        )
        without = strong_scaling_curve(
            g, lambda n: round_robin_partition(g, n), CORES, model
        )
        wl = WorkloadModel()
        loads = wl.location_weights(g).astype(float)
        cap = loads.sum() / loads.max()
        return g, with_split, without, cap

    g, with_split, without, cap = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report("Headline — US population at 1/1000 scale "
           f"({g.n_persons:,} people, {g.n_visits:,} visits)")
    report("core-modules map to paper scale x1000 (constant work/core)")
    report("")
    report(f"{'cores':>7} {'paper-scale':>12} {'speedup':>9} {'eff':>7} "
           f"{'RR speedup':>11}")
    for pt, rr in zip(with_split, without):
        report(
            f"{pt.core_modules:>7} {pt.core_modules * 1000:>12,} "
            f"{pt.speedup:>9.1f} {pt.efficiency:>6.1%} {rr.speedup:>11.1f}"
        )
    report("")
    report(f"paper: 14,357 speedup @64K (22%); 58,649 @360K (16.3%)")
    report(f"unsplit speedup cap (L_tot/l_max): {cap:.1f}")

    eff = {pt.core_modules: pt.efficiency for pt in with_split}
    # (i) double-digit efficiency at both scaled operating points.
    assert eff[64] > 0.10
    assert eff[360] > 0.05
    # (ii) graceful decline, not a cliff.
    assert eff[360] < eff[64]
    assert eff[360] > 0.2 * eff[64]
    # (iii) the unsplit graph cannot reach the large operating point.
    # (cap ignores the person phase, which parallelises freely, so the
    # measured speedup may exceed it slightly.)
    rr_speedup = {pt.core_modules: pt.speedup for pt in without}
    assert rr_speedup[360] <= cap * 1.25
    split_speedup = {pt.core_modules: pt.speedup for pt in with_split}
    assert split_speedup[360] > 3 * rr_speedup[360]
