"""Benchmark: the lab sweep engine — warm cache and warm pool payoff.

Measures what :mod:`repro.lab` exists to provide:

* ``sweep_cold_w2``  — first sweep, empty artifact cache, 2 workers;
  every population is synthesised from scratch.
* ``sweep_warm_w2``  — identical sweep re-run against the now-populated
  on-disk cache (zero artifact builds; the manifest's hit rate is
  exported in params).
* ``sweep_warm_w1``  — the same warm sweep on a single worker, so the
  emitted ``w2_over_w1`` ratio tracks pool scaling on the host.

The two warm stores must be byte-identical — the determinism contract
is asserted here too, so the perf artifact can never come from runs
that diverged.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_sweep.py          # full
    REPRO_BENCH_TINY=1 PYTHONPATH=src python benchmarks/bench_sweep.py

Emits ``BENCH_<name>.json`` (via :mod:`benchmarks.emit`) with
wall-clock seconds per variant and the derived ratios.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, os.path.dirname(__file__))

from emit import emit_result  # noqa: E402

from repro.lab import ResultStore, SweepConfig, run_sweep  # noqa: E402
from repro.spec import PopulationSpec, RunSpec  # noqa: E402

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")

N_PERSONS = 300 if TINY else 4_000
N_DAYS = 3 if TINY else 12
REPLICATIONS = 2 if TINY else 5
GRID = {"transmissibility": [1e-4, 2e-4] if TINY else [1e-4, 2e-4, 4e-4]}
MASTER_SEED = 17


def config() -> SweepConfig:
    return SweepConfig(
        base=RunSpec(
            population=PopulationSpec(
                n_persons=N_PERSONS, seed=3, name=f"bench-sweep-{N_PERSONS}"
            ),
            n_days=N_DAYS,
            initial_infections=10,
        ),
        grid=GRID,
        replications=REPLICATIONS,
        master_seed=MASTER_SEED,
        name="bench",
    )


def timed_sweep(workers: int, store_dir: Path, cache_dir: Path):
    t0 = time.perf_counter()
    report = run_sweep(
        config(), workers=workers, store_dir=store_dir, cache_dir=cache_dir
    )
    return time.perf_counter() - t0, report


def main() -> int:
    cfg = config()
    print(f"sweep bench: {cfg.n_runs} runs ({cfg.n_points} points x "
          f"{cfg.replications} replications), {N_PERSONS:,} persons, "
          f"{N_DAYS} days{' [tiny]' if TINY else ''}")

    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as td:
        root = Path(td)
        cache = root / "cache"
        cold_s, cold = timed_sweep(2, root / "cold", cache)
        print(f"  cold, 2 workers: {cold_s:7.3f}s  "
              f"({cold.builds} artifact builds, "
              f"{cold.runs_per_min:.0f} runs/min)")
        warm2_s, warm2 = timed_sweep(2, root / "warm2", cache)
        print(f"  warm, 2 workers: {warm2_s:7.3f}s  "
              f"({warm2.builds} artifact builds, "
              f"hit rate {warm2.cache_hit_rate:.0%})")
        warm1_s, warm1 = timed_sweep(1, root / "warm1", cache)
        print(f"  warm, 1 worker : {warm1_s:7.3f}s")

        identical = (
            ResultStore(root / "warm2").results_path.read_bytes()
            == ResultStore(root / "warm1").results_path.read_bytes()
            == ResultStore(root / "cold").results_path.read_bytes()
        )
        print(f"  stores byte-identical across pool sizes: {identical}")
        ok = identical and warm2.builds == 0

    path = emit_result(
        "sweep",
        params={
            "n_runs": cfg.n_runs,
            "n_points": cfg.n_points,
            "replications": cfg.replications,
            "persons": N_PERSONS,
            "days": N_DAYS,
            "tiny": TINY,
            "warm_cache_hit_rate": round(warm2.cache_hit_rate, 4),
            "warm_runs_per_min": round(warm2.runs_per_min, 1),
            "stores_identical": identical,
        },
        wall_seconds={
            "sweep_cold_w2": cold_s,
            "sweep_warm_w2": warm2_s,
            "sweep_warm_w1": warm1_s,
        },
        speedup={
            "warm_over_cold": cold_s / warm2_s,
            "w2_over_w1": warm1_s / warm2_s,
        },
    )
    print(f"wrote {path.name}")
    if not ok:
        print("FAIL: warm sweep rebuilt artifacts or stores diverged")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
