"""Figure 8 — upper-bound speedup after splitLoc (GP-splitLoc).

Paper: same sweep as Figure 4 but on the modified graphs; curves now
reach 1-2 orders of magnitude higher before saturating (CA reaches
~160,000 vs ~2,500 in Figure 4).
"""

from repro.analysis.speedup import speedup_bound_curve
from repro.partition.splitloc import split_heavy_locations

GP_KS = [12, 48, 192]
LPT_KS = [768, 3072, 12288, 49152, 196608]


def test_fig8_speedup_bound_split(benchmark, state_graphs, report):
    def sweep():
        out = {}
        for state, g in state_graphs.items():
            sr = split_heavy_locations(g, max_partitions=98304)
            gp = speedup_bound_curve(sr.graph, GP_KS, method="gp")
            lpt = speedup_bound_curve(sr.graph, LPT_KS, method="lpt")
            base = speedup_bound_curve(g, [LPT_KS[-1]], method="lpt")[LPT_KS[-1]]
            out[state] = ({**gp, **lpt}, base)
        return out

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)

    ks = GP_KS + LPT_KS
    report("Figure 8 — upper bound on estimated speedup (GP-splitLoc)")
    report("k: " + " ".join(f"{k:>8}" for k in ks))
    for state, (curve, _) in curves.items():
        report(f"{state}: " + " ".join(f"{curve[k]:>8.1f}" for k in ks))
    report("")
    report("saturation gain over Figure 4 (same k):")
    for state, (curve, base) in curves.items():
        gain = curve[LPT_KS[-1]] / base
        report(f"  {state}: {gain:.1f}x")
        assert gain > 2.0  # splitLoc lifts the ceiling for every state
