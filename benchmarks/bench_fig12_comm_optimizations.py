"""Figure 12 (referenced in §IV) — communication optimizations.

The paper states the §IV optimisations combined — SMP mode, completion
detection instead of quiescence detection, message aggregation, smaller
messages — "provide an additional 40% reduction in execution time,
shown as the difference between RR no-opt and RR in Figure 12".

We run the runtime simulator on the same scenario in both
configurations (RR data distribution throughout):

* **RR no-opt** — non-SMP layout, QD synchronisation, no aggregation;
* **RR (optimised)** — SMP with comm threads, CD, 64 KiB aggregation.
"""

from repro.charm.machine import Machine, MachineConfig
from repro.core import Scenario, TransmissionModel
from repro.core.parallel import Distribution, ParallelEpiSimdemics
from repro.partition import round_robin_partition, split_heavy_locations

N_DAYS = 3
N_NODES = 4


def _run(graph, smp, sync, agg_bytes):
    if smp:
        mc = MachineConfig(n_nodes=N_NODES, cores_per_node=16, smp=True, processes_per_node=2)
    else:
        mc = MachineConfig(n_nodes=N_NODES, cores_per_node=16, smp=False)
    m = Machine(mc)
    sc = Scenario(
        graph=graph, n_days=N_DAYS, seed=9, initial_infections=10,
        transmission=TransmissionModel(2e-4),
    )
    dist = Distribution.from_partition(round_robin_partition(graph, m.n_pes), m)
    run = ParallelEpiSimdemics(
        sc, mc, dist, sync=sync, aggregation_bytes=agg_bytes
    ).run()
    return run


def test_fig12_rr_noopt_vs_rr(benchmark, ia, report):
    # The paper's Figure-12 comparison sits in the regime where each PE
    # handles hundreds of visit messages per day; the heavy-location
    # compute floor is removed by splitLoc (both configurations use the
    # same graph, so the comparison isolates the §IV optimisations).
    graph = split_heavy_locations(ia, max_partitions=1024).graph

    def run_both():
        noopt = _run(graph, smp=False, sync="qd", agg_bytes=0)
        opt = _run(graph, smp=True, sync="cd", agg_bytes=64 * 1024)
        return noopt, opt

    noopt, opt = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # Both configurations compute the same epidemic.
    assert noopt.result.curve == opt.result.curve

    t_noopt = noopt.time_per_day
    t_opt = opt.time_per_day
    reduction = 1.0 - t_opt / t_noopt
    report("Figure 12 — RR no-opt vs RR (communication optimisations)")
    report(f"{'config':<12} {'t/day (virtual ms)':>19} {'wire msgs':>10}")
    report(f"{'RR no-opt':<12} {t_noopt * 1e3:>19.3f} "
           f"{sum(noopt.runtime_stats['messages'].values()):>10}")
    report(f"{'RR':<12} {t_opt * 1e3:>19.3f} "
           f"{sum(opt.runtime_stats['messages'].values()):>10}")
    report("")
    report(f"execution-time reduction: {reduction:.1%} (paper: ~40%)")
    # Note: non-SMP has more compute PEs (no cores lost to comm threads),
    # so the optimised win must come from cheaper messaging + sync.
    assert reduction > 0.15, f"optimisations only saved {reduction:.1%}"
