"""§VII (future work) — dynamic load balancing strategies.

The paper's closing direction: Charm++'s measurement-based LB assumes
the principle of persistence, which EpiSimdemics' epidemic-driven
dynamic load violates; the authors propose application-specific
*prediction* instead.  This bench realises that comparison on the
runtime simulator: no LB vs measured GreedyLB / RefineLB vs the
predictive balancer (static model + last observed interactions), on an
over-decomposed RR distribution whose initial balance is poor.
"""

import numpy as np

from repro.charm.machine import Machine, MachineConfig
from repro.core import Scenario, TransmissionModel
from repro.core.parallel import Distribution, ParallelEpiSimdemics
from repro.partition import round_robin_partition

N_DAYS = 8
MC = MachineConfig(n_nodes=4, cores_per_node=8, smp=True, processes_per_node=2)


def _run(graph, lb_period, lb_strategy="greedy"):
    m = Machine(MC)
    sc = Scenario(
        graph=graph, n_days=N_DAYS, seed=9, initial_infections=15,
        transmission=TransmissionModel(2e-4),
    )
    # 4x over-decomposition gives the balancer chares to move (paper §II-C).
    part = round_robin_partition(graph, m.n_pes * 4)
    dist = Distribution.from_partition(part, m)
    sim = ParallelEpiSimdemics(
        sc, MC, dist, lb_period=lb_period, lb_strategy=lb_strategy
    )
    res = sim.run()
    return res, sim


def test_sec7_load_balancing(benchmark, wy, report):
    def run_all():
        out = {}
        out["no LB"] = _run(wy, None)
        for strategy in ("greedy", "refine", "predictive"):
            out[strategy] = _run(wy, 2, strategy)
        return out

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report("§VII — load-balancing strategies (over-decomposed RR, WY)")
    report(f"{'strategy':<12} {'t/day (ms)':>11} {'loc phase (ms)':>15} "
           f"{'LB steps':>9} {'moves':>6}")
    base_curve = out["no LB"][0].result.curve
    rows = {}
    for name, (res, sim) in out.items():
        # Steady-state per-day time: skip the first LB period.
        steady = [p.total for p in res.phase_times[3:]]
        loc = [p.location_phase for p in res.phase_times[3:]]
        rows[name] = (float(np.mean(steady)), float(np.mean(loc)))
        report(
            f"{name:<12} {rows[name][0] * 1e3:>11.3f} {rows[name][1] * 1e3:>15.3f} "
            f"{sim.lb_steps:>9} {sim.lb_moves:>6}"
        )
        # Migration must never change the epidemic.
        assert res.result.curve == base_curve

    report("")
    report("all balancers run and preserve semantics; measured balancers")
    report("fix the static RR imbalance, the predictive balancer matches")
    report("them while needing no measurement history (paper §VII's point)")

    # Every LB strategy should improve (or at least not hurt) the
    # location phase relative to no LB.
    for name in ("greedy", "refine", "predictive"):
        assert rows[name][1] <= rows["no LB"][1] * 1.05, name
    # And at least one balancer should show a real improvement.
    best = min(rows[name][1] for name in ("greedy", "refine", "predictive"))
    assert best < rows["no LB"][1]
