"""Table II — L_tot and max location load before/after graph modification.

Paper (×10³ units): l_max drops from hundreds to ~2 after splitting;
L_tot/l_max increases by a factor of 89 on average (min 11, max 290)
across the 49 regions, d_max by 54× on average, while D grows ≤ 5.25%.
"""

import numpy as np

from repro.loadmodel.workload import WorkloadModel
from repro.partition.splitloc import split_heavy_locations


def test_table2(benchmark, state_graphs, report):
    wl = WorkloadModel()

    def build():
        rows = {}
        for state, g in state_graphs.items():
            loads = wl.location_weights(g).astype(float)
            sr = split_heavy_locations(g, max_partitions=98304)
            loads2 = wl.location_weights(sr.graph).astype(float)
            rows[state] = {
                "Ltot": loads.sum(),
                "lmax": loads.max(),
                "lmax_after": loads2.max(),
                "dmax": int(g.location_visit_counts.max()),
                "dmax_after": int(sr.graph.location_visit_counts.max()),
                "growth": sr.graph.n_locations / g.n_locations - 1.0,
            }
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    report("Table II — total and max location load before/after splitLoc")
    report(f"{'state':>6} {'Ltot':>12} {'lmax':>10} {'lmax_after':>11} "
           f"{'gain':>7} {'dmax':>7} {'dmax_after':>11} {'D growth':>9}")
    gains, dmax_red = [], []
    for state in ("CA", "NY", "MI", "NC", "IA", "AR", "WY"):
        r = rows[state]
        gain = (r["Ltot"] / r["lmax_after"]) / (r["Ltot"] / r["lmax"])
        gains.append(gain)
        dmax_red.append(r["dmax"] / r["dmax_after"])
        report(
            f"{state:>6} {r['Ltot']:>12.3e} {r['lmax']:>10.3e} {r['lmax_after']:>11.3e} "
            f"{gain:>6.1f}x {r['dmax']:>7} {r['dmax_after']:>11} {r['growth']:>8.1%}"
        )
    report("")
    report(f"Ltot/lmax gain: mean {np.mean(gains):.0f}x (paper: avg 89x, 11-290x)")
    report(f"dmax reduction: mean {np.mean(dmax_red):.0f}x (paper: avg 54x, 12-341x)")
    growth = max(r["growth"] for r in rows.values())
    report(f"max D growth:   {growth:.1%} (paper: <= 5.25%)")

    # Shape assertions: large gains, modest growth.  Scaled graphs give
    # smaller absolute factors than the paper's full-size data.
    assert np.mean(gains) > 3.0
    assert np.mean(dmax_red) > 2.0
    assert growth < 0.75
    for r in rows.values():
        assert r["lmax_after"] < r["lmax"]
