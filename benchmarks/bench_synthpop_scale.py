"""Benchmark: streaming population generation at paper-like scales.

The paper's Table I runs EpiSimdemics on populations from 0.3M (WY)
through 280M (US) persons; the dense in-RAM generator tops out long
before that on laptop-class machines.  This bench certifies the
streaming path (:func:`repro.synthpop.generate_population_streamed`)
actually delivers bounded-memory generation:

* each scale (1M / 5M / 10M persons) is generated *and*
  block-partitioned in a child process whose **anonymous memory is
  hard-capped** via ``RLIMIT_DATA`` — if generation ever materialises
  O(n_visits) arrays in RAM, the child dies with ``MemoryError`` and
  the bench fails loudly;
* the child reports wall time, peak RSS, and on-disk footprint, from
  which the emitted artifact derives **bytes/person** (the number the
  scaling playbook in ``docs/scaling.md`` accounts for);
* a small-scale cross-check asserts the memmap population is
  *bit-identical* to the in-RAM one — same
  :meth:`~repro.synthpop.PersonLocationGraph.content_hash`, same
  epidemic trajectory through :func:`repro.spec.execute`.

``RLIMIT_DATA`` (not ``RLIMIT_AS``) is the right rlimit: it caps
``brk``/anonymous mappings — the generator's working set — while
leaving the file-backed memmap mappings uncounted, which is exactly
the claim under test.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_synthpop_scale.py          # full
    REPRO_BENCH_TINY=1 PYTHONPATH=src python benchmarks/bench_synthpop_scale.py

Emits ``BENCH_<name>.json`` (via :mod:`benchmarks.emit`).
"""

from __future__ import annotations

import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, os.path.dirname(__file__))

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")

SCALES = [30_000, 60_000] if TINY else [1_000_000, 5_000_000, 10_000_000]
EQUALITY_PERSONS = 5_000 if TINY else 150_000
#: anonymous-memory cap for each generation child.  The full 10M-person
#: run fits comfortably: the streaming working set is O(n_locations) +
#: one flush buffer, not O(n_visits).
BUDGET_BYTES = 512 * 1024**2 if TINY else 1536 * 1024**2
SEED = 7
PARTITIONS = 16
N_DAYS = 8


# ----------------------------------------------------------------------
def run_child(n_persons: int, budget: int, workdir: str) -> int:
    """Generate + block-partition one scale under an anon-memory cap.

    Prints KEY=VALUE lines for the parent; runs in its own process so
    ``ru_maxrss`` is this scale's peak, not the bench script's.
    """
    resource.setrlimit(resource.RLIMIT_DATA, (budget, budget))

    import numpy as np

    from repro.synthpop import PopulationConfig, generate_population_streamed
    from repro.smp.layout import block_partition

    t0 = time.perf_counter()
    graph = generate_population_streamed(
        PopulationConfig(n_persons=n_persons), SEED,
        backing="memmap", dir=workdir,
    )
    wall_gen = time.perf_counter() - t0

    t0 = time.perf_counter()
    part = block_partition(graph.n_persons, graph.n_locations, PARTITIONS)
    degrees = graph.person_degrees  # chunk-accumulated, never O(n_visits)
    loads = np.bincount(
        part.person_part, weights=degrees, minlength=PARTITIONS
    )
    imbalance = float(loads.max() / max(1.0, loads.mean()))
    wall_part = time.perf_counter() - t0

    backing_dir = Path(graph.backing.dir)
    files = list(backing_dir.glob("*.npy"))
    disk = sum(f.stat().st_size for f in files)
    maxrss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    print(f"WALL_GEN={wall_gen:.6f}")
    print(f"WALL_PART={wall_part:.6f}")
    print(f"MAXRSS_KB={maxrss_kb}")
    print(f"DISK_BYTES={disk}")
    print(f"VISITS={graph.n_visits}")
    print(f"LOCATIONS={graph.n_locations}")
    print(f"MEMMAP_FILES={len(files)}")
    print(f"IMBALANCE={imbalance:.4f}")
    return 0


def measure_scale(n_persons: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-synthpop-") as workdir:
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__),
             "--child", str(n_persons), str(BUDGET_BYTES), workdir],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=str(Path(__file__).resolve().parent.parent),
        )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        raise SystemExit(
            f"scale {n_persons:,}: child failed under "
            f"RLIMIT_DATA={BUDGET_BYTES:,} (see output above)"
        )
    out = {}
    for line in proc.stdout.splitlines():
        key, eq, value = line.partition("=")
        if eq:
            out[key] = value
    needed = {"WALL_GEN", "WALL_PART", "MAXRSS_KB", "DISK_BYTES",
              "VISITS", "LOCATIONS", "MEMMAP_FILES", "IMBALANCE"}
    missing = needed - out.keys()
    if missing:
        raise SystemExit(f"scale {n_persons:,}: child omitted {sorted(missing)}")
    if int(out["MEMMAP_FILES"]) == 0:
        raise SystemExit(f"scale {n_persons:,}: memmap path was not exercised")
    return out


def equality_check() -> dict:
    """RAM and memmap builds of one spec: same bytes, same epidemic."""
    from repro.spec import PopulationSpec, RunSpec, execute

    def spec(backing):
        return PopulationSpec(
            kind="streamed", n_persons=EQUALITY_PERSONS, seed=SEED,
            backing=backing, name=f"bench-eq-{EQUALITY_PERSONS}",
        )

    g_ram = spec("ram").build()
    g_mm = spec("memmap").build()
    hash_equal = g_ram.content_hash() == g_mm.content_hash()
    r_ram = execute(RunSpec(population=spec("ram"), n_days=N_DAYS), graph=g_ram)
    r_mm = execute(RunSpec(population=spec("memmap"), n_days=N_DAYS), graph=g_mm)
    epi_equal = r_ram.record() == r_mm.record()
    spec_equal = spec("ram").content_hash() == spec("memmap").content_hash()
    if not (hash_equal and epi_equal and spec_equal):
        raise SystemExit(
            f"ram/memmap divergence: content_hash_equal={hash_equal} "
            f"epidemic_equal={epi_equal} spec_hash_equal={spec_equal}"
        )
    return {
        "equality_persons": EQUALITY_PERSONS,
        "content_hash_equal": hash_equal,
        "epidemic_equal": epi_equal,
        "spec_hash_equal": spec_equal,
    }


def main() -> int:
    from emit import emit_result

    results = {}
    for n in SCALES:
        print(f"[synthpop-scale] {n:,} persons "
              f"(RLIMIT_DATA {BUDGET_BYTES // 1024**2}MB)...", flush=True)
        results[n] = measure_scale(n)

    print(f"[synthpop-scale] ram/memmap equality at "
          f"{EQUALITY_PERSONS:,} persons...", flush=True)
    eq = equality_check()

    top = max(SCALES)
    r_top = results[top]
    bytes_per_person = int(r_top["DISK_BYTES"]) / top

    params = {
        "tiny": TINY,
        "scales": SCALES,
        "max_persons": top,
        "budget_bytes": BUDGET_BYTES,
        "partitions": PARTITIONS,
        "seed": SEED,
        "bytes_per_person": round(bytes_per_person, 2),
        "memmap_verified": all(
            int(r["MEMMAP_FILES"]) > 0 for r in results.values()
        ),
        **eq,
    }
    wall = {}
    for n, r in results.items():
        label = f"{n // 1000}k" if n < 1_000_000 else f"{n // 1_000_000}m"
        wall[f"gen_{label}"] = float(r["WALL_GEN"])
        wall[f"part_{label}"] = float(r["WALL_PART"])
        params[f"maxrss_mb_{label}"] = int(r["MAXRSS_KB"]) // 1024
        params[f"disk_mb_{label}"] = int(r["DISK_BYTES"]) // 1024**2
        params[f"visits_{label}"] = int(r["VISITS"])
        params[f"locations_{label}"] = int(r["LOCATIONS"])
        params[f"imbalance_{label}"] = float(r["IMBALANCE"])

    top_label = f"{top // 1000}k" if top < 1_000_000 else f"{top // 1_000_000}m"
    speedup = {
        "persons_per_second": top / wall[f"gen_{top_label}"],
    }
    path = emit_result("synthpop_scale", params, wall, speedup)
    print(f"wrote {path}")
    for n, r in results.items():
        print(f"  {n:>12,} persons: gen {float(r['WALL_GEN']):7.2f}s  "
              f"part {float(r['WALL_PART']):6.2f}s  "
              f"rss {int(r['MAXRSS_KB']) // 1024:5d}MB  "
              f"disk {int(r['DISK_BYTES']) // 1024**2:5d}MB")
    print(f"  bytes/person at {top:,}: {bytes_per_person:.1f}")
    return 0


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        sys.exit(run_child(int(sys.argv[2]), int(sys.argv[3]), sys.argv[4]))
    sys.exit(main())
