"""Figure 13 — strong scaling of the four data distributions.

Paper: time per simulation day vs core-modules (1 … 128K), for
California, Michigan, Iowa and Arkansas, under RR, GP, RR-splitLoc and
GP-splitLoc.  The claims to reproduce:

* all curves scale at small core counts;
* RR and GP flatten when the heaviest location saturates a PE
  (L_tot/l_max), with RR flattening at a higher time;
* the splitLoc variants keep scaling for orders of magnitude more
  cores, GP-splitLoc fastest overall at scale.

Mode: the analytic phase-cost model (validated against the runtime
simulator in ``tests/integration/test_model_vs_runtime.py``).  GP uses
the real multilevel partitioner up to 224 PEs and the LPT balance
stand-in above (where GP's balance saturates anyway); RR is exact.
Scaled-down graphs saturate at proportionally fewer cores than the
paper's full-size states — the *shape* is the reproduction target.
"""

import numpy as np

from repro.analysis.scaling import PhaseCostModel, strong_scaling_curve
from repro.analysis.speedup import lpt_location_partition
from repro.loadmodel.workload import WorkloadModel
from repro.partition import partition_bipartite, round_robin_partition, split_heavy_locations
from repro.partition.quality import BipartitePartition

CORES = [1, 16, 64, 256, 1024, 4096, 16384, 131072]
GP_MAX_PES = 256
STATES = ("CA", "MI", "IA", "AR")


def _gp_provider(graph):
    wl = WorkloadModel()
    loads = wl.location_weights(graph).astype(float)

    def provider(n_pes):
        if n_pes <= GP_MAX_PES:
            return partition_bipartite(graph, n_pes)
        return BipartitePartition(
            person_part=np.arange(graph.n_persons, dtype=np.int64) % n_pes,
            location_part=lpt_location_partition(loads, n_pes),
            k=n_pes,
            method="GP~",
        )

    return provider


def test_fig13_strong_scaling(benchmark, state_graphs, report):
    model = PhaseCostModel()

    def sweep():
        results = {}
        for state in STATES:
            g = state_graphs[state]
            sr = split_heavy_locations(g, max_partitions=131072)
            strategies = {
                "RR": (g, lambda n, g=g: round_robin_partition(g, n)),
                "GP": (g, _gp_provider(g)),
                "RR-splitLoc": (
                    sr.graph,
                    lambda n, g2=sr.graph: round_robin_partition(g2, n),
                ),
                "GP-splitLoc": (sr.graph, _gp_provider(sr.graph)),
            }
            results[state] = {
                name: strong_scaling_curve(graph, provider, CORES, model)
                for name, (graph, provider) in strategies.items()
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    from repro.analysis.figures import render_series

    report("Figure 13 — simulation time per day (virtual s) vs core-modules")
    for state in STATES:
        report(f"\n=== {state}")
        report("cores:      " + " ".join(f"{c:>10}" for c in CORES))
        for name, pts in results[state].items():
            report(
                f"{name:<11} "
                + " ".join(f"{p.time_per_day:>10.6f}" for p in pts)
            )
    report("")
    report("log-log shape for CA (cores -> time/day):")
    report(
        render_series(
            {
                name: [(p.core_modules, p.time_per_day) for p in pts]
                for name, pts in results["CA"].items()
            }
        )
    )

    for state in STATES:
        r = results[state]
        t = {name: [p.time_per_day for p in pts] for name, pts in r.items()}
        # Everyone scales early: 16 cores beats 1 core everywhere.
        for name in t:
            assert t[name][1] < t[name][0]
        # GP-splitLoc is the fastest at the largest core count...
        big = {name: series[-1] for name, series in t.items()}
        assert big["GP-splitLoc"] <= min(big["RR"], big["GP"]) * 1.05
        # ...and keeps scaling well past where RR/GP have flattened.
        assert big["GP-splitLoc"] < 0.5 * big["RR"]
        # RR/GP flatten: their best time barely improves beyond 1024 cores.
        i1024 = CORES.index(1024)
        assert min(t["RR"][i1024:]) > 0.25 * t["RR"][i1024]

    report("")
    report("Claims checked: early scaling for all; RR/GP flatten at the")
    report("l_max ceiling; splitLoc variants keep scaling (GP-splitLoc")
    report("fastest at the largest counts) — the paper's Figure-13 shape.")
