"""Strong scaling of the real shared-memory backend (paper §IV-A).

Runs one heavy-tailed scenario on the :class:`~repro.smp.SmpSimulator`
at 1, 2 and 4 worker processes and reports measured wall-clock speedup
— the repo's first *real* (non-modelled) scaling curve, the executable
counterpart of Figure 12's SMP-mode claim.  Every run is also checked
bit-identical to the sequential reference, so the speedup is certified
to be for the *same* epidemic.

Results go to ``BENCH_smp.json`` at the repo root via
:mod:`benchmarks.emit`.

Runs standalone (the CI smoke step) or under pytest:

    PYTHONPATH=src python benchmarks/bench_smp_scaling.py
    PYTHONPATH=src REPRO_BENCH_TINY=1 python benchmarks/bench_smp_scaling.py

``REPRO_BENCH_TINY=1`` shrinks the population to smoke-test scale.
``REPRO_BENCH_KERNEL`` selects the exposure kernel (flat / grouped /
compiled); the kernel used is recorded in the JSON.

Speedup assertions scale with the machine: at full scale, 2 workers
must beat 1 worker (>1.0x) whenever the machine has >= 2 CPUs — the
regression gate for the "SMP slower than sequential" bug — and 4
workers must reach >= 1.5x on >= 4 CPUs.  One-core runners execute the
same code but time-slice the workers, so only correctness is asserted
there (cpu count is recorded in the JSON either way).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from emit import emit_result  # noqa: E402

from repro.core import Scenario, TransmissionModel  # noqa: E402
from repro.smp import SmpSimulator  # noqa: E402
from repro.spec import PopulationSpec  # noqa: E402
from repro.validate.oracle import sequential_reference  # noqa: E402

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")

N_PERSONS = 500 if TINY else 20_000
N_LOCATIONS = 80 if TINY else 2_500
N_DAYS = 2 if TINY else 8
REPEATS = 1 if TINY else 2
WORKER_COUNTS = (1, 2, 4)
KERNEL = os.environ.get("REPRO_BENCH_KERNEL") or None
MIN_SPEEDUP_AT_2 = 1.0
MIN_SPEEDUP_AT_4 = 1.5


def _scenario(graph) -> Scenario:
    return Scenario(
        graph=graph, n_days=N_DAYS, seed=5, initial_infections=20,
        transmission=TransmissionModel(2.5e-4),
    )


def main() -> int:
    cpus = os.cpu_count() or 1
    graph = PopulationSpec(
        kind="preset", preset="heavy-tailed", n_persons=N_PERSONS,
        params={"n_locations": N_LOCATIONS},
    ).build()
    print(f"heavy-tailed preset: {graph.n_persons:,} persons, "
          f"{graph.n_visits:,} visits, {N_DAYS} days, {cpus} cpus"
          f"{' [tiny]' if TINY else ''}")

    seq_result, _events, seq_state, _rem = sequential_reference(_scenario(graph))

    walls: dict[str, float] = {}
    ok = True
    for w in WORKER_COUNTS:
        best = float("inf")
        for _ in range(REPEATS):
            out = SmpSimulator(_scenario(graph), n_workers=w, kernel=KERNEL).run()
            best = min(best, out.wall_seconds)
        identical = (
            out.result.curve == seq_result.curve
            and (out.final_health_state == seq_state).all()
        )
        ok = ok and identical
        walls[f"w{w}"] = best
        print(f"  {w} worker(s): {best * 1e3:8.1f}ms  "
              f"bit-identical={identical}  "
              f"({out.backpressure_events} ring stalls)")

    speedups = {f"w{w}": walls["w1"] / walls[f"w{w}"] for w in WORKER_COUNTS}
    print(f"speedup vs 1 worker: " +
          ", ".join(f"{w}x{speedups[f'w{w}']:.2f}" for w in WORKER_COUNTS))

    path = emit_result(
        "smp",
        params={
            "n_persons": graph.n_persons,
            "n_locations": N_LOCATIONS,
            "n_visits": graph.n_visits,
            "n_days": N_DAYS,
            "repeats": REPEATS,
            "cpu_count": cpus,
            "kernel": KERNEL or "default",
            "tiny": TINY,
        },
        wall_seconds=walls,
        speedup=speedups,
    )
    print(f"wrote {path}")

    if not ok:
        print("FAIL: an smp run diverged from the sequential reference")
        return 1
    if not TINY and cpus >= 2 and speedups["w2"] <= MIN_SPEEDUP_AT_2:
        print(f"FAIL: 2 workers must beat 1 worker on a {cpus}-cpu "
              f"machine, got {speedups['w2']:.2f}x")
        return 1
    if not TINY and cpus >= 4 and speedups["w4"] < MIN_SPEEDUP_AT_4:
        print(f"FAIL: expected >= {MIN_SPEEDUP_AT_4}x at 4 workers on a "
              f"{cpus}-cpu machine, got {speedups['w4']:.2f}x")
        return 1
    if cpus < 2:
        print(f"note: {cpus} cpu(s) — speedup assertions skipped "
              f"(workers are time-sliced), correctness asserted")
    return 0


def test_smp_scaling():
    """Pytest entry point for the same measurement."""
    assert main() == 0


if __name__ == "__main__":
    raise SystemExit(main())
