"""Figure 7 — degree & load distributions after graph modification.

Paper: compared to Figure 3(c,d), the splitLoc-processed graphs lose
their extreme tail — the distributions truncate around the split
threshold while the bulk is unchanged.
"""

import numpy as np

from repro.analysis.distributions import degree_distribution, load_distribution
from repro.partition.splitloc import split_heavy_locations


def test_fig7_distributions(benchmark, state_graphs, report):
    def build():
        out = {}
        for state, g in state_graphs.items():
            sr = split_heavy_locations(g, max_partitions=98304)
            out[state] = (
                degree_distribution(g),
                degree_distribution(sr.graph),
                load_distribution(g),
                load_distribution(sr.graph),
            )
        return out

    out = benchmark.pedantic(build, rounds=1, iterations=1)

    report("Figure 7 — distributions after splitLoc (tail truncation)")
    report(f"{'state':>6} {'deg max before':>15} {'deg max after':>14} "
           f"{'load max before':>16} {'load max after':>15}")
    for state, (deg_b, deg_a, load_b, load_a) in out.items():
        report(
            f"{state:>6} {deg_b.edges[-1]:>15.0f} {deg_a.edges[-1]:>14.0f} "
            f"{load_b.edges[-1]:>16.3g} {load_a.edges[-1]:>15.3g}"
        )
        # Tail truncated in both views; bulk (total mass) unchanged.
        assert deg_a.edges[-1] < deg_b.edges[-1]
        assert load_a.edges[-1] < load_b.edges[-1]
        assert deg_a.counts.sum() >= deg_b.counts.sum()  # D grew slightly
