"""Figure 3 — the load model and the input distributions.

(a) static model fit against measured location-kernel timings (paper:
    ~5% mean error on Blue Waters; we refit the same functional form on
    this host's measurements of the actual interaction kernel);
(b) dynamic model — run-time statistics (interactions) correlate with
    measured cost; we report the fitted linear coefficients;
(c) in-degree distribution per state (log-binned);
(d) static load distribution per state.
"""

import time

import numpy as np

from repro.analysis.distributions import degree_distribution, load_distribution
from repro.core.des import pairwise_exposures
from repro.loadmodel.fit import fit_piecewise_linear
from repro.util.histogram import fit_powerlaw_exponent


def _measure_kernel(sizes, repeats=5, seed=0):
    """Wall-time the location interaction kernel at several DES sizes."""
    rng = np.random.default_rng(seed)
    xs, ys, inters = [], [], []
    for n in sizes:
        subloc = np.zeros(n, dtype=np.int64)
        start = rng.integers(0, 700, n)
        end = start + rng.integers(30, 700, n)
        sus = rng.random(n) < 0.8
        inf = ~sus
        t0 = time.perf_counter()
        for _ in range(repeats):
            out = pairwise_exposures(subloc, start, end, sus, inf)
        ys.append((time.perf_counter() - t0) / repeats)
        xs.append(2 * n)  # events = 2 x visits
        inters.append(len(out[0]))
    return np.array(xs, dtype=float), np.array(ys), np.array(inters, dtype=float)


def test_fig3a_static_model_fit(benchmark, report):
    sizes = np.unique(np.geomspace(4, 1500, 30).astype(int))

    def fit():
        xs, ys, _ = _measure_kernel(sizes)
        return fit_piecewise_linear(xs, ys), xs, ys

    fit_report, xs, ys = benchmark.pedantic(fit, rounds=1, iterations=1)
    m = fit_report.model
    report("Figure 3(a) — static load model fit (this host)")
    report(str(fit_report))
    report("")
    report(f"{'events':>8} {'measured(s)':>12} {'predicted(s)':>13} {'err':>7}")
    for x, y in list(zip(xs, ys))[::4]:
        p = float(m.evaluate(x))
        report(f"{int(x):>8} {y:>12.3e} {p:>13.3e} {abs(p - y) / y:>6.1%}")
    report("")
    report("paper reports ~5% mean error for its fit on Blue Waters")
    # Wall-clock measurement noise on shared machines is real; the fit
    # must at least be structurally sane and far better than a constant.
    assert fit_report.mean_relative_error < 0.5
    assert m.slope_b > 0


def test_fig3b_dynamic_model(benchmark, report):
    sizes = np.unique(np.geomspace(16, 1500, 24).astype(int))

    def fit():
        xs, ys, inters = _measure_kernel(sizes, seed=3, repeats=9)
        # Relative-error weighted least squares (events and interactions
        # are collinear and span decades — unweighted OLS lets the
        # largest samples swamp the fit, cf. repro.loadmodel.fit):
        # load ~ c0 + c1*events + c2*interactions.
        A = np.stack([np.ones_like(xs), xs, inters], axis=1)
        w = 1.0 / ys
        coef, *_ = np.linalg.lstsq(A * w[:, None], ys * w, rcond=None)
        pred = A @ coef
        err = np.abs(pred - ys) / ys
        corr = float(np.corrcoef(pred, ys)[0, 1])
        return coef, float(err.mean()), corr

    coef, err, corr = benchmark.pedantic(fit, rounds=1, iterations=1)
    report("Figure 3(b) — dynamic load model (events + interactions)")
    report(f"c0={coef[0]:.3e}  c_events={coef[1]:.3e}  c_interactions={coef[2]:.3e}")
    report(f"mean relative error: {err:.1%}; corr(pred, measured) = {corr:.3f}")
    report("(run-time statistics predict location cost — but are only")
    report(" available online, so the static model drives partitioning)")
    assert corr > 0.8
    assert err < 0.8


def test_fig3cd_distributions(benchmark, state_graphs, report):
    def build():
        out = {}
        for state, g in state_graphs.items():
            deg = degree_distribution(g)
            load = load_distribution(g)
            ind = g.location_in_degrees()
            beta = fit_powerlaw_exponent(ind[ind >= 3].astype(float), xmin=3.0)
            out[state] = (deg, load, beta, int(ind.max()))
        return out

    out = benchmark.pedantic(build, rounds=1, iterations=1)
    report("Figure 3(c,d) — location in-degree & static load distributions")
    report(f"{'state':>6} {'max in-degree':>14} {'tail beta':>10} "
           f"{'deg decades':>12} {'load decades':>13}")
    for state, (deg, load, beta, dmax) in out.items():
        report(
            f"{state:>6} {dmax:>14} {beta:>10.2f} "
            f"{np.log10(deg.edges[-1] / deg.edges[0]):>12.1f} "
            f"{np.log10(load.edges[-1] / load.edges[0]):>13.1f}"
        )
        assert beta > 1.0  # heavy-tailed, as the paper's Figure 3(c)
        assert dmax > 50
