"""§IV-B's design rationale — module-local sync for simulation ensembles.

"In the future, we will use EPISIMDEMICS to perform multiple
simulations simultaneously ... we require an approach that enables us
to perform synchronization local to a module."  This bench runs a
two-replica ensemble (one small, one large scenario) sharing a machine
and compares completion detection against quiescence detection: QD's
waves observe global traffic, so the small replica keeps waving while
the large one's messages are in flight.
"""

import numpy as np

from repro.charm.machine import Machine, MachineConfig
from repro.core import Scenario, TransmissionModel
from repro.core.parallel import Distribution, ParallelEnsemble
from repro.partition import round_robin_partition

MC = MachineConfig(n_nodes=2, cores_per_node=8, smp=True, processes_per_node=2)
N_DAYS = 4


def _ensemble(graphs, sync):
    m = Machine(MC)
    scenarios = [
        Scenario(graph=g, n_days=N_DAYS, seed=7 + i, initial_infections=8,
                 transmission=TransmissionModel(2e-4))
        for i, g in enumerate(graphs)
    ]
    dists = [
        Distribution.from_partition(round_robin_partition(g, m.n_pes), m)
        for g in graphs
    ]
    return ParallelEnsemble(scenarios, MC, dists, sync=sync)


def test_ensemble_cd_vs_qd(benchmark, wy, ia, report):
    def run():
        out = {}
        for sync in ("cd", "qd"):
            ens = _ensemble([wy, ia], sync)
            results = ens.run()
            small = ens.sims[0]
            out[sync] = {
                "small_waves": small.visit_detector.waves_run
                + small.infect_detector.waves_run,
                "virtual_time": max(r.total_virtual_time for r in results),
                "curves": [r.result.curve for r in results],
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    report("§IV-B rationale — two-replica ensemble (WY + IA) on one machine")
    report(f"{'sync':<6} {'small-replica waves':>20} {'ensemble time (ms)':>19}")
    for sync in ("cd", "qd"):
        report(
            f"{sync:<6} {out[sync]['small_waves']:>20} "
            f"{out[sync]['virtual_time'] * 1e3:>19.3f}"
        )
    # Both protocols produce identical epidemics.
    for a, b in zip(out["cd"]["curves"], out["qd"]["curves"]):
        assert a == b
    # QD couples the small replica to the big one's traffic.
    assert out["qd"]["small_waves"] > 1.5 * out["cd"]["small_waves"]
    assert out["qd"]["virtual_time"] >= out["cd"]["virtual_time"]
    report("")
    report("QD makes the small replica wave while the big replica's")
    report("messages are in flight; CD closes each module independently —")
    report("the reason the paper adopted completion detection.")
