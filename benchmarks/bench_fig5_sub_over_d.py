"""Figure 5 — max(S_ub)/D across the 48 contiguous states + DC.

Paper: one dot per state; before splitLoc, per-location scalability
S_ub/D *decreases* with data size (the §III-B power-law argument);
after splitLoc the ceiling lifts by orders of magnitude and the
downward trend flattens.
"""

import numpy as np

from repro.analysis.speedup import analytic_sub_over_d_bound, sub_over_d
from repro.partition.splitloc import split_heavy_locations
from repro.synthpop import synthetic_state_sweep


def test_fig5_sub_over_d(benchmark, report):
    def sweep():
        graphs = synthetic_state_sweep(scale=5e-5, seed=1)
        rows = []
        for state, g in sorted(graphs.items(), key=lambda kv: kv[1].n_locations):
            before = sub_over_d(g)
            sr = split_heavy_locations(g, max_partitions=98304)
            after = sub_over_d(sr.graph)
            rows.append((state, g.n_locations, before, after, sr.n_split))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report("Figure 5 — max estimated speedup per location (S_ub / D)")
    report(f"{'state':>6} {'locations':>10} {'before':>10} {'after':>10} {'n_split':>8}")
    for state, d, before, after, n_split in rows:
        report(f"{state:>6} {d:>10} {before:>10.4f} {after:>10.4f} {n_split:>8}")

    befores = np.array([r[2] for r in rows])
    afters = np.array([r[3] for r in rows])
    sizes = np.array([float(r[1]) for r in rows])

    # (a) before: scalability per location degrades with size
    #     (negative log-log correlation, the paper's Figure 5a trend).
    corr = np.corrcoef(np.log10(sizes), np.log10(befores))[0, 1]
    report("")
    report(f"log-log correlation(size, S_ub/D) before split: {corr:.2f}")
    assert corr < -0.3

    # (b) after: ceiling lifted for every state.
    improvement = afters / befores
    report(f"improvement after splitLoc: mean {improvement.mean():.1f}x, "
           f"min {improvement.min():.1f}x, max {improvement.max():.1f}x")
    assert np.all(improvement >= 1.0)
    assert improvement.mean() > 3.0

    # The paper's analytic bound has the same direction.
    bound_small = analytic_sub_over_d_bound(2.0, 14.35, int(sizes.min()))
    bound_big = analytic_sub_over_d_bound(2.0, 14.35, int(sizes.max()))
    report(f"analytic bound: {bound_small:.4f} (smallest) -> {bound_big:.4f} (largest)")
    assert bound_big < bound_small
