"""Figure 2 — the load-balance vs edge-cut trade-off, and Figure 6's
split resolving it.

The paper's worked example: a 13-node graph where node 1 (weight 8,
highest degree) forces a choice between balancing load (cut all its
edges, max load 8) and minimising cut (keep it with neighbours, cut 6,
max load > average×2).  Splitting the heavy node (Figure 6) dissolves
the dilemma.  We regenerate both hand partitions' metrics and then show
our partitioner's actual behaviour on the same graph before/after a
node split.
"""

import numpy as np

from repro.partition.csr import CSRGraph
from repro.partition.metis import MultilevelPartitioner, PartitionerOptions
from repro.partition.quality import csr_edge_cut


def figure2_graph():
    edges = [
        (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8),
        (1, 2), (3, 4), (5, 6), (7, 8),
        (9, 10), (11, 12), (9, 11),
    ]
    u = np.array([e[0] for e in edges])
    v = np.array([e[1] for e in edges])
    w = np.ones(len(edges), dtype=np.int64)
    vwgt = np.full(13, 2, dtype=np.int64)
    vwgt[0] = 8
    vwgt[6] = 1
    vwgt[8] = 1
    return CSRGraph.from_edge_list(13, u, v, w, vwgt)


def split_node0(g):
    """Figure 6(a): split node 0 into two halves with divided edges."""
    n = g.n_vertices
    vwgt = np.vstack([g.vwgt, [[4]]])
    vwgt[0, 0] = 4
    us, vs, ws = [], [], []
    src = np.repeat(np.arange(n), np.diff(g.xadj))
    seen = set()
    for a, b, w in zip(src, g.adjncy, g.adjwgt):
        if (b, a) in seen:
            continue
        seen.add((a, b))
        # First half of node 0's edges stay, second half move to node 13.
        if a == 0 and b >= 5:
            a = 13
        us.append(a); vs.append(b); ws.append(w)
    return CSRGraph.from_edge_list(n + 1, np.array(us), np.array(vs), np.array(ws), vwgt)


def _metrics(g, part):
    loads = np.bincount(part, weights=g.vwgt[:, 0].astype(float), minlength=int(part.max()) + 1)
    return csr_edge_cut(g, part), loads.max(), loads.max() / loads.mean()


def test_fig2_tradeoff(benchmark, report):
    g = figure2_graph()
    load_opt = np.array([0, 1, 1, 2, 2, 3, 3, 4, 4, 1, 2, 3, 4])
    cut_opt = np.array([0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 4, 4])

    def evaluate():
        return _metrics(g, load_opt), _metrics(g, cut_opt)

    (cut_a, max_a, ratio_a), (cut_b, max_b, ratio_b) = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )
    report("Figure 2 — 5-way partitions of the worked example")
    report(f"{'objective':<22} {'edge cut':>9} {'max load':>9} {'max/avg':>8}")
    report(f"{'(a) balance load':<22} {cut_a:>9} {max_a:>9.0f} {ratio_a:>8.2f}")
    report(f"{'(b) minimise cut':<22} {cut_b:>9} {max_b:>9.0f} {ratio_b:>8.2f}")
    report("")
    report(f"paper: (a) 8 cuts / ratio 1.67   (b) 6 cuts / ratio 2.08")

    # The structural claims: (a) trades cut for balance, (b) the reverse.
    assert cut_a > cut_b
    assert ratio_a < ratio_b

    # Figure 6: after splitting node 0, the partitioner balances without
    # the extra cut penalty.
    g_split = split_node0(g)
    part = MultilevelPartitioner(PartitionerOptions(coarsen_to=14)).kway(g_split, 5)
    cut_s, max_s, ratio_s = _metrics(g_split, part)
    report("")
    report(f"after node split (Fig. 6a): cut={cut_s}, max load={max_s:.0f}, ratio={ratio_s:.2f}")
    assert max_s <= max_b
