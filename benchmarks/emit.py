"""Common benchmark-result emitter: ``BENCH_<name>.json`` at repo root.

Every benchmark that produces a headline number calls
:func:`emit_result` so the perf trajectory of the repo is machine
-readable: one JSON file per benchmark, overwritten on each run,
committed alongside the code that produced it.  Schema::

    {
      "name":    "<benchmark name>",
      "params":  {...},          # whatever shaped the measurement
      "wall_seconds": {...},     # label -> seconds
      "speedup": {...},          # label -> derived ratio (optional)
      "git_sha": "<HEAD sha or null>",
    }

Usable standalone (no pytest) because the benches double as scripts.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

__all__ = ["REPO_ROOT", "emit_result"]

REPO_ROOT = Path(__file__).resolve().parent.parent


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except OSError:  # pragma: no cover - no git binary
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def emit_result(
    name: str,
    params: dict,
    wall_seconds: dict,
    speedup: dict | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root; return its path."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    payload = {
        "name": name,
        "params": params,
        "wall_seconds": {k: round(float(v), 6) for k, v in wall_seconds.items()},
        "speedup": {k: round(float(v), 3) for k, v in (speedup or {}).items()},
        "git_sha": _git_sha(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
